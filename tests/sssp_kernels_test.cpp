// Tests for the alternative SSSP/APSP kernels: delta-stepping, the batched
// multi-source kernel and the device blocked Floyd–Warshall. All must agree
// exactly — bit for bit — with Dijkstra.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <tuple>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/device_floyd_warshall.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/multi_source.hpp"
#include "testing/families.hpp"

namespace eardec::sssp {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::Graph;

class DeltaSteppingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaSteppingTest, MatchesDijkstraAcrossDeltas) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      70, static_cast<graph::EdgeId>(150 + 13 * seed), seed);
  for (const graph::Weight delta : {0.0, 1.0, 10.0, 50.0, 1e9}) {
    for (graph::VertexId s = 0; s < g.num_vertices(); s += 23) {
      const auto got = delta_stepping(g, s, delta);
      const auto ref = dijkstra(g, s);
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
        ASSERT_DOUBLE_EQ(got[v], ref.dist[v])
            << "delta " << delta << " source " << s << " vertex " << v;
      }
    }
  }
}

TEST_P(DeltaSteppingTest, ParallelMatchesSerial) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      200, static_cast<graph::EdgeId>(600 + 17 * seed), seed + 77);
  hetero::ThreadPool pool(3);
  const auto serial = delta_stepping(g, 0, 0);
  const auto parallel = delta_stepping(g, 0, 0, &pool);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_DOUBLE_EQ(parallel[v], serial[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaSteppingTest,
                         ::testing::Range<std::uint64_t>(1, 6));

TEST(DeltaStepping, DisconnectedAndEdgeCases) {
  Builder b(4);
  b.add_edge(0, 1, 3.0);
  const Graph g = std::move(b).build();
  const auto d = delta_stepping(g, 0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_EQ(d[2], graph::kInfWeight);
  EXPECT_THROW((void)delta_stepping(g, 4), std::out_of_range);
}

TEST(DeltaStepping, ZeroWeightEdgesTerminate) {
  Builder b(4);
  b.add_edge(0, 1, 0.0);
  b.add_edge(1, 2, 0.0);
  b.add_edge(2, 3, 5.0);
  const Graph g = std::move(b).build();
  const auto d = delta_stepping(g, 0, 2.0);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
  EXPECT_DOUBLE_EQ(d[3], 5.0);
}

// ---------------------------------------------------------------------------
// Differential suites: every property family (including multigraph,
// disconnected and degenerate-weight ones) must yield bit-identical
// distances from every alternative kernel. EXPECT_EQ, not EXPECT_NEAR —
// the fixpoint argument (docs/sssp_perf.md) promises exact agreement.

class KernelFamilyTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::uint64_t>> {
 protected:
  [[nodiscard]] Graph make_graph() const {
    const auto& fam = eardec::testing::families()[std::get<0>(GetParam())];
    return fam.make(std::get<1>(GetParam()), 48);
  }
  [[nodiscard]] std::string family_name() const {
    return eardec::testing::families()[std::get<0>(GetParam())].name;
  }
};

TEST_P(KernelFamilyTest, MultiSourceBitMatchesDijkstra) {
  const Graph g = make_graph();
  const graph::VertexId n = g.num_vertices();
  if (n == 0) GTEST_SKIP() << "empty instance";
  // One workspace reused across batch widths: also exercises ensure()
  // growth and proves stale lane data never leaks between runs.
  MultiSourceWorkspace ws;
  for (const std::uint32_t k : {1u, 3u, 8u, kMaxSourceLanes}) {
    DistanceMatrix out(n);
    ws.ensure(n, k);
    for (graph::VertexId s = 0; s < n; s += k) {
      ws.distances(g, s, std::min<graph::VertexId>(s + k, n), out);
    }
    for (graph::VertexId s = 0; s < n; ++s) {
      const auto ref = dijkstra(g, s);
      for (graph::VertexId v = 0; v < n; ++v) {
        ASSERT_EQ(out.at(s, v), ref.dist[v])
            << family_name() << " k=" << k << " source " << s << " vertex "
            << v;
      }
    }
  }
}

TEST_P(KernelFamilyTest, DeltaSteppingWorkspaceBitMatchesDijkstra) {
  const Graph g = make_graph();
  const graph::VertexId n = g.num_vertices();
  if (n == 0) GTEST_SKIP() << "empty instance";
  hetero::ThreadPool pool(3);
  DeltaSteppingWorkspace serial_ws(n);
  DeltaSteppingWorkspace pool_ws(n);
  std::vector<graph::Weight> serial(n);
  std::vector<graph::Weight> parallel(n);
  for (graph::VertexId s = 0; s < n; ++s) {
    const auto ref = dijkstra(g, s);
    // delta = 0 -> heuristic width; degenerate-weight families rely on it
    // to keep the bucket count bounded by the edge count.
    serial_ws.distances(g, s, serial);
    pool_ws.distances(g, s, parallel, 0, &pool);
    for (graph::VertexId v = 0; v < n; ++v) {
      ASSERT_EQ(serial[v], ref.dist[v])
          << family_name() << " serial source " << s << " vertex " << v;
      ASSERT_EQ(parallel[v], ref.dist[v])
          << family_name() << " pooled source " << s << " vertex " << v;
    }
  }
}

std::string kernel_family_test_name(
    const ::testing::TestParamInfo<KernelFamilyTest::ParamType>& info) {
  std::string name = eardec::testing::families()[std::get<0>(info.param)].name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Families, KernelFamilyTest,
    ::testing::Combine(
        ::testing::Range<std::size_t>(0, eardec::testing::families().size()),
        ::testing::Values<std::uint64_t>(1, 2)),
    kernel_family_test_name);

TEST(MultiSource, RejectsBadBatches) {
  const Graph g = gen::cycle(6);
  MultiSourceWorkspace ws(g.num_vertices(), 4);
  DistanceMatrix out(g.num_vertices());
  EXPECT_THROW(ws.distances(g, 2, 1, out), std::out_of_range);  // empty
  EXPECT_THROW(ws.distances(g, 0, 5, out), std::invalid_argument);  // > lanes
  EXPECT_THROW(ws.distances(g, 4, 8, out), std::out_of_range);
}

TEST(MultiSource, ReportsFrontierRounds) {
  // A path graph forces one frontier round per hop.
  Builder b(5);
  for (graph::VertexId v = 0; v + 1 < 5; ++v) b.add_edge(v, v + 1, 1.0);
  const Graph g = std::move(b).build();
  MultiSourceWorkspace ws(g.num_vertices(), 1);
  DistanceMatrix out(g.num_vertices());
  ws.distances(g, 0, 1, out);
  EXPECT_GE(ws.last_rounds(), 4u);
  EXPECT_DOUBLE_EQ(out.at(0, 4), 4.0);
}

class DeviceFwTest : public ::testing::TestWithParam<graph::VertexId> {};

TEST_P(DeviceFwTest, MatchesHostFloydWarshallAtEveryBlockSize) {
  const graph::VertexId block = GetParam();
  const Graph g = gen::random_connected(60, 140, 9);
  hetero::Device dev({.workers = 2, .warp_size = 4});
  const DistanceMatrix got = device_floyd_warshall(g, dev, block);
  const DistanceMatrix ref = floyd_warshall(g);
  for (graph::VertexId i = 0; i < g.num_vertices(); ++i) {
    for (graph::VertexId j = 0; j < g.num_vertices(); ++j) {
      ASSERT_NEAR(got.at(i, j), ref.at(i, j), 1e-9)
          << "block " << block << " pair " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, DeviceFwTest,
                         ::testing::Values(1u, 7u, 16u, 64u, 128u));

TEST(DeviceFw, EmptyGraphAndKernelCount) {
  hetero::Device dev({.workers = 1});
  const DistanceMatrix d = device_floyd_warshall(Graph{}, dev);
  EXPECT_EQ(d.size(), 0u);
  // A graph with one tile launches exactly three kernels.
  const Graph g = gen::cycle(8);
  hetero::Device dev2({.workers = 1});
  (void)device_floyd_warshall(g, dev2, 8);
  EXPECT_EQ(dev2.kernels_launched(), 3u);
}

}  // namespace
}  // namespace eardec::sssp
