// Tests for the alternative SSSP/APSP kernels: delta-stepping and the
// device blocked Floyd–Warshall. Both must agree exactly with Dijkstra.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/device_floyd_warshall.hpp"
#include "sssp/dijkstra.hpp"

namespace eardec::sssp {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::Graph;

class DeltaSteppingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaSteppingTest, MatchesDijkstraAcrossDeltas) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      70, static_cast<graph::EdgeId>(150 + 13 * seed), seed);
  for (const graph::Weight delta : {0.0, 1.0, 10.0, 50.0, 1e9}) {
    for (graph::VertexId s = 0; s < g.num_vertices(); s += 23) {
      const auto got = delta_stepping(g, s, delta);
      const auto ref = dijkstra(g, s);
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
        ASSERT_DOUBLE_EQ(got[v], ref.dist[v])
            << "delta " << delta << " source " << s << " vertex " << v;
      }
    }
  }
}

TEST_P(DeltaSteppingTest, ParallelMatchesSerial) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      200, static_cast<graph::EdgeId>(600 + 17 * seed), seed + 77);
  hetero::ThreadPool pool(3);
  const auto serial = delta_stepping(g, 0, 0);
  const auto parallel = delta_stepping(g, 0, 0, &pool);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_DOUBLE_EQ(parallel[v], serial[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaSteppingTest,
                         ::testing::Range<std::uint64_t>(1, 6));

TEST(DeltaStepping, DisconnectedAndEdgeCases) {
  Builder b(4);
  b.add_edge(0, 1, 3.0);
  const Graph g = std::move(b).build();
  const auto d = delta_stepping(g, 0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_EQ(d[2], graph::kInfWeight);
  EXPECT_THROW((void)delta_stepping(g, 4), std::out_of_range);
}

TEST(DeltaStepping, ZeroWeightEdgesTerminate) {
  Builder b(4);
  b.add_edge(0, 1, 0.0);
  b.add_edge(1, 2, 0.0);
  b.add_edge(2, 3, 5.0);
  const Graph g = std::move(b).build();
  const auto d = delta_stepping(g, 0, 2.0);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
  EXPECT_DOUBLE_EQ(d[3], 5.0);
}

class DeviceFwTest : public ::testing::TestWithParam<graph::VertexId> {};

TEST_P(DeviceFwTest, MatchesHostFloydWarshallAtEveryBlockSize) {
  const graph::VertexId block = GetParam();
  const Graph g = gen::random_connected(60, 140, 9);
  hetero::Device dev({.workers = 2, .warp_size = 4});
  const DistanceMatrix got = device_floyd_warshall(g, dev, block);
  const DistanceMatrix ref = floyd_warshall(g);
  for (graph::VertexId i = 0; i < g.num_vertices(); ++i) {
    for (graph::VertexId j = 0; j < g.num_vertices(); ++j) {
      ASSERT_NEAR(got.at(i, j), ref.at(i, j), 1e-9)
          << "block " << block << " pair " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, DeviceFwTest,
                         ::testing::Values(1u, 7u, 16u, 64u, 128u));

TEST(DeviceFw, EmptyGraphAndKernelCount) {
  hetero::Device dev({.workers = 1});
  const DistanceMatrix d = device_floyd_warshall(Graph{}, dev);
  EXPECT_EQ(d.size(), 0u);
  // A graph with one tile launches exactly three kernels.
  const Graph g = gen::cycle(8);
  hetero::Device dev2({.workers = 1});
  (void)device_floyd_warshall(g, dev2, 8);
  EXPECT_EQ(dev2.kernels_launched(), 3u);
}

}  // namespace
}  // namespace eardec::sssp
