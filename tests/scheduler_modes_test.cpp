// Scheduler correctness properties: (1) the four execution modes are
// observationally identical — same distance tables on random graphs, only
// the resource mapping differs; (2) the chunk-claiming queue survives heavy
// contention (many tiny units, more workers than cores) with every unit
// executed exactly once. These are the invariants the Phase-II pipeline
// rests on (DESIGN.md §5, invariant 6).
#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "core/ear_apsp.hpp"
#include "graph/generators.hpp"
#include "hetero/scheduler.hpp"
#include "hetero/work_queue.hpp"

namespace eardec {
namespace {

namespace gen = graph::generators;
using core::ApspOptions;
using core::ExecutionMode;
using graph::Graph;
using graph::VertexId;
using sssp::DistanceMatrix;

ApspOptions mode_options(ExecutionMode mode) {
  return {.mode = mode,
          .cpu_threads = 3,
          .device = {.workers = 2, .warp_size = 16},
          .sources_per_unit = 4};
}

void expect_identical(const DistanceMatrix& want, const DistanceMatrix& got,
                      const char* mode_name) {
  ASSERT_EQ(want.size(), got.size());
  for (VertexId u = 0; u < want.size(); ++u) {
    for (VertexId v = 0; v < want.size(); ++v) {
      // Weights are integer-valued, so every mode must agree bit-for-bit.
      ASSERT_EQ(want.at(u, v), got.at(u, v))
          << mode_name << " differs at (" << u << ", " << v << ")";
    }
  }
}

class SchedulerModesTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerModesTest, AllModesProduceIdenticalDistanceTables) {
  const std::uint64_t seed = GetParam();
  gen::BlockTreeParams params;
  params.num_blocks = 6;
  params.largest_block = 24;
  params.small_block_min = 3;
  params.small_block_max = 9;
  params.pendants = 5;
  const Graph base = gen::block_tree(params, seed);
  const Graph g = gen::subdivide(base, 40, seed + 17);

  const DistanceMatrix reference =
      core::ear_apsp_matrix(g, mode_options(ExecutionMode::Sequential));
  for (const ExecutionMode mode :
       {ExecutionMode::Multicore, ExecutionMode::DeviceOnly,
        ExecutionMode::Heterogeneous}) {
    const DistanceMatrix got = core::ear_apsp_matrix(g, mode_options(mode));
    expect_identical(reference, got,
                     mode == ExecutionMode::Multicore      ? "Multicore"
                     : mode == ExecutionMode::DeviceOnly   ? "DeviceOnly"
                                                           : "Heterogeneous");
  }
}

TEST_P(SchedulerModesTest, MaterializedTablesMatchAcrossModes) {
  const std::uint64_t seed = GetParam();
  const Graph g =
      gen::subdivide(gen::random_connected(40, 70, seed), 30, seed + 3);
  const core::EarApsp reference(g, mode_options(ExecutionMode::Sequential));
  for (const ExecutionMode mode :
       {ExecutionMode::Multicore, ExecutionMode::Heterogeneous}) {
    const core::EarApsp apsp(g, mode_options(mode));
    for (VertexId u = 0; u < g.num_vertices(); u += 3) {
      for (VertexId v = 0; v < g.num_vertices(); v += 2) {
        ASSERT_EQ(reference.distance(u, v), apsp.distance(u, v))
            << "pair (" << u << ", " << v << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerModesTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(SchedulerContention, ManyTinyUnitsEightThreadsExactlyOnce) {
  // Many 1-source units with more workers than this container has cores:
  // the adversarial regime for the chunk-claiming queue. Every unit must
  // run exactly once and the stats must account for all of them.
  constexpr std::uint32_t kUnits = 5000;
  for (int round = 0; round < 3; ++round) {
    hetero::WorkQueue queue([] {
      std::vector<hetero::WorkUnit> units;
      units.reserve(kUnits);
      for (std::uint32_t i = 0; i < kUnits; ++i) units.push_back({i, i % 17});
      return units;
    }());
    std::vector<std::atomic<int>> hits(kUnits);
    const auto work = [&hits](const hetero::WorkUnit& u, unsigned) {
      hits[u.id].fetch_add(1);
    };
    const auto stats = hetero::run_heterogeneous(
        queue, {.cpu_threads = 8, .cpu_batch = 1, .device_batch = 4},
        work, work);
    for (std::uint32_t i = 0; i < kUnits; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "unit " << i << " round " << round;
    }
    EXPECT_EQ(stats.cpu_units + stats.device_units, kUnits);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.remaining(), 0u);
    std::uint64_t claimed = 0;
    for (const auto& w : stats.cpu_workers) claimed += w.units;
    claimed += stats.device_worker.units;
    EXPECT_EQ(claimed, kUnits);
  }
}

TEST(SchedulerContention, OneSourceUnitsMatchSequentialPipeline) {
  // End-to-end variant: sources_per_unit == 1 floods phase II with tiny
  // units; 8 CPU threads plus the device drain them. The distance tables
  // must still match the sequential run exactly.
  const Graph g = gen::subdivide(gen::random_connected(60, 110, 42), 60, 7);
  ApspOptions contended;
  contended.mode = ExecutionMode::Heterogeneous;
  contended.cpu_threads = 8;
  contended.device = {.workers = 2, .warp_size = 16};
  contended.sources_per_unit = 1;
  contended.cpu_batch = 1;
  contended.device_batch = 2;
  const DistanceMatrix reference =
      core::ear_apsp_matrix(g, mode_options(ExecutionMode::Sequential));
  const DistanceMatrix got = core::ear_apsp_matrix(g, contended);
  expect_identical(reference, got, "Heterogeneous/1-source-units");
}

}  // namespace
}  // namespace eardec
