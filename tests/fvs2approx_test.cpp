// Tests for the Bafna–Berman–Fujito 2-approximate feedback vertex set:
// validity on every graph family, the 2x bound against brute-force optima
// on small graphs, semidisjoint-cycle handling, and end-to-end use inside
// the MCB pipeline.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "mcb/ear_mcb.hpp"
#include "mcb/fvs.hpp"

namespace eardec::mcb {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::Graph;
using graph::VertexId;

/// Exponential exact minimum FVS for tiny graphs (n <= 16).
std::size_t optimal_fvs_size(const Graph& g) {
  const VertexId n = g.num_vertices();
  for (std::size_t size = 0; size <= n; ++size) {
    // All subsets of this cardinality.
    std::vector<bool> pick(n, false);
    std::fill(pick.end() - static_cast<std::ptrdiff_t>(size), pick.end(), true);
    do {
      std::vector<VertexId> subset;
      for (VertexId v = 0; v < n; ++v) {
        if (pick[v]) subset.push_back(v);
      }
      if (is_feedback_vertex_set(g, subset)) return size;
    } while (std::next_permutation(pick.begin(), pick.end()));
  }
  return n;
}

class Fvs2ApproxRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fvs2ApproxRandomTest, ValidOnRandomGraphs) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      35, static_cast<graph::EdgeId>(45 + 6 * seed), seed);
  const auto fvs = feedback_vertex_set_2approx(g);
  EXPECT_TRUE(is_feedback_vertex_set(g, fvs));
}

TEST_P(Fvs2ApproxRandomTest, WithinTwiceOptimalOnTinyGraphs) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      11, static_cast<graph::EdgeId>(13 + seed % 6), seed + 50);
  const auto fvs = feedback_vertex_set_2approx(g);
  ASSERT_TRUE(is_feedback_vertex_set(g, fvs));
  const std::size_t opt = optimal_fvs_size(g);
  EXPECT_LE(fvs.size(), 2 * opt) << "opt " << opt;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fvs2ApproxRandomTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Fvs2Approx, SemidisjointCycleCostsOneVertex) {
  // A bare cycle is semidisjoint: exactly one vertex suffices (optimal).
  const auto fvs = feedback_vertex_set_2approx(gen::cycle(9));
  EXPECT_EQ(fvs.size(), 1u);
  // A "balloon": cycle attached to a path — still one vertex.
  Builder b(7);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 1);
  b.add_edge(3, 4, 1);
  b.add_edge(4, 1, 1);  // cycle 1-2-3-4 with tails
  b.add_edge(4, 5, 1);
  b.add_edge(5, 6, 1);
  const Graph balloon = std::move(b).build();
  const auto fvs2 = feedback_vertex_set_2approx(balloon);
  EXPECT_EQ(fvs2.size(), 1u);
  EXPECT_TRUE(is_feedback_vertex_set(balloon, fvs2));
}

TEST(Fvs2Approx, TwoDisjointCyclesNeedTwo) {
  Builder b(6);
  for (VertexId i = 0; i < 3; ++i) b.add_edge(i, (i + 1) % 3, 1);
  for (VertexId i = 0; i < 3; ++i) b.add_edge(3 + i, 3 + (i + 1) % 3, 1);
  const Graph g = std::move(b).build();
  const auto fvs = feedback_vertex_set_2approx(g);
  EXPECT_EQ(fvs.size(), 2u);
  EXPECT_TRUE(is_feedback_vertex_set(g, fvs));
}

TEST(Fvs2Approx, SelfLoopsAndParallels) {
  Builder b(3);
  b.add_edge(0, 0, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(1, 2, 1);
  const Graph g = std::move(b).build();
  const auto fvs = feedback_vertex_set_2approx(g);
  EXPECT_TRUE(is_feedback_vertex_set(g, fvs));
  EXPECT_EQ(fvs.size(), 2u);  // the loop endpoint + one of the pair
}

TEST(Fvs2Approx, ForestNeedsNothing) {
  EXPECT_TRUE(feedback_vertex_set_2approx(gen::path(9)).empty());
}

TEST(Fvs2Approx, OftenNoLargerThanGreedy) {
  // Not guaranteed pointwise, but the local-ratio set should win or tie on
  // the bulk of structured instances; assert the aggregate.
  std::size_t greedy_total = 0, bbf_total = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Graph g = gen::subdivide(
        gen::random_biconnected(18, 30, seed), 20, seed + 3);
    greedy_total += feedback_vertex_set(g).size();
    const auto bbf = feedback_vertex_set_2approx(g);
    EXPECT_TRUE(is_feedback_vertex_set(g, bbf));
    bbf_total += bbf.size();
  }
  EXPECT_LE(bbf_total, greedy_total + 3);
}

TEST(Fvs2Approx, DrivesMcbEndToEnd) {
  Graph g = gen::subdivide(gen::random_biconnected(14, 26, 4), 18, 5);
  const McbResult with_bbf = minimum_cycle_basis(
      g, {.mode = core::ExecutionMode::Sequential,
          .fvs = FvsAlgorithm::BafnaBermanFujito});
  const McbResult with_greedy = minimum_cycle_basis(
      g, {.mode = core::ExecutionMode::Sequential,
          .fvs = FvsAlgorithm::GreedyPeel});
  EXPECT_NEAR(with_bbf.total_weight, with_greedy.total_weight, 1e-6);
  EXPECT_TRUE(validate_basis(g, with_bbf));
}

}  // namespace
}  // namespace eardec::mcb
