// Tests for DFS, biconnected components, bridges, block-cut tree, and ear
// decomposition — validated against brute-force oracles on many small
// random graphs.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "connectivity/bcc.hpp"
#include "connectivity/block_cut_tree.hpp"
#include "connectivity/bridges.hpp"
#include "connectivity/dfs.hpp"
#include "connectivity/ear_decomposition.hpp"
#include "connectivity/parallel_ear.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eardec::connectivity {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::Graph;

// ------------------------------------------------------------ brute oracles

/// Number of connected components when `skip_vertex`/`skip_edge` is removed.
std::uint32_t components_without(const Graph& g, VertexId skip_vertex,
                                 EdgeId skip_edge) {
  std::vector<std::uint32_t> comp(g.num_vertices(), kNoComponent);
  std::uint32_t count = 0;
  std::vector<VertexId> stack;
  for (VertexId r = 0; r < g.num_vertices(); ++r) {
    if (r == skip_vertex || comp[r] != kNoComponent) continue;
    comp[r] = count;
    stack.push_back(r);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const graph::HalfEdge& he : g.neighbors(v)) {
        if (he.edge == skip_edge || he.to == skip_vertex) continue;
        if (comp[he.to] == kNoComponent) {
          comp[he.to] = count;
          stack.push_back(he.to);
        }
      }
    }
    ++count;
  }
  return count;
}

std::uint32_t num_components(const Graph& g) {
  return connected_components(g).count;
}

// ------------------------------------------------------------------ DfsTest

TEST(Dfs, ForestCoversAllVerticesWithUniqueDiscTimes) {
  const Graph g = gen::random_connected(60, 150, 5);
  const DfsForest f = dfs_forest(g);
  ASSERT_EQ(f.preorder.size(), 60u);
  ASSERT_EQ(f.roots.size(), 1u);
  std::set<std::uint32_t> times(f.disc.begin(), f.disc.end());
  EXPECT_EQ(times.size(), 60u);
  // Parents are discovered before children.
  for (VertexId v = 0; v < 60; ++v) {
    if (f.parent[v] != graph::kNullVertex) {
      EXPECT_LT(f.disc[f.parent[v]], f.disc[v]);
      const auto [a, b] = g.endpoints(f.parent_edge[v]);
      EXPECT_TRUE((a == v && b == f.parent[v]) || (b == v && a == f.parent[v]));
    }
  }
}

TEST(Dfs, ConnectedComponentsOnForest) {
  Builder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = std::move(b).build();  // vertices 5, 6 isolated
  const ConnectedComponents cc = connected_components(g);
  EXPECT_EQ(cc.count, 4u);
  EXPECT_EQ(cc.component[0], cc.component[2]);
  EXPECT_NE(cc.component[0], cc.component[3]);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(gen::cycle(5)));
}

// ------------------------------------------------------------------ BccTest

TEST(Bcc, TriangleIsOneComponent) {
  const auto bcc = biconnected_components(gen::cycle(3));
  EXPECT_EQ(bcc.num_components, 1u);
  EXPECT_EQ(bcc.num_articulation_points(), 0u);
}

TEST(Bcc, TwoTrianglesSharingAVertex) {
  Builder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 2);
  const Graph g = std::move(b).build();
  const auto bcc = biconnected_components(g);
  EXPECT_EQ(bcc.num_components, 2u);
  EXPECT_EQ(bcc.num_articulation_points(), 1u);
  EXPECT_TRUE(bcc.is_articulation[2]);
}

TEST(Bcc, PathHasOneComponentPerEdge) {
  const auto bcc = biconnected_components(gen::path(5));
  EXPECT_EQ(bcc.num_components, 4u);
  EXPECT_EQ(bcc.num_articulation_points(), 3u);
}

TEST(Bcc, ParallelEdgesFormOneComponent) {
  Builder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph g = std::move(b).build();
  const auto bcc = biconnected_components(g);
  EXPECT_EQ(bcc.num_components, 2u);
  EXPECT_EQ(bcc.edge_component[0], bcc.edge_component[1]);
  EXPECT_TRUE(bcc.is_articulation[1]);
}

TEST(Bcc, SelfLoopIsOwnComponentAndNotArticulation) {
  Builder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  const auto bcc = biconnected_components(g);
  EXPECT_EQ(bcc.num_components, 2u);
  EXPECT_NE(bcc.edge_component[0], bcc.edge_component[1]);
  EXPECT_EQ(bcc.num_articulation_points(), 0u);
}

TEST(Bcc, EdgesArePartitioned) {
  const Graph g = gen::block_tree({.num_blocks = 12,
                                   .largest_block = 20,
                                   .small_block_min = 3,
                                   .small_block_max = 6,
                                   .intra_degree = 3.0,
                                   .pendants = 5},
                                  17);
  const auto bcc = biconnected_components(g);
  std::vector<std::uint32_t> seen(g.num_edges(), 0);
  EdgeId total = 0;
  for (std::uint32_t c = 0; c < bcc.num_components; ++c) {
    for (const EdgeId e : bcc.component_edges(c)) {
      ++seen[e];
      ++total;
    }
  }
  EXPECT_EQ(total, g.num_edges());
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](std::uint32_t c) { return c == 1; }));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NE(bcc.edge_component[e], kNoComponent);
  }
}

// Property: articulation points match the brute-force removal oracle.
class BccRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BccRandomTest, ArticulationPointsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(24, static_cast<graph::EdgeId>(24 + seed % 20), seed);
  const auto bcc = biconnected_components(g);
  const std::uint32_t base = num_components(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Removing v splits the graph iff v is an articulation point
    // (account for v itself disappearing from the count).
    const std::uint32_t without =
        components_without(g, v, graph::kNullEdge);
    const bool brute = without > base - (g.degree(v) == 0 ? 1 : 0);
    EXPECT_EQ(bcc.is_articulation[v], brute) << "vertex " << v;
  }
}

TEST_P(BccRandomTest, BridgesMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(24, static_cast<graph::EdgeId>(24 + seed % 20), seed + 100);
  const auto b = bridges(g);
  const std::uint32_t base = num_components(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const bool brute = components_without(g, graph::kNullVertex, e) > base;
    EXPECT_EQ(b[e], brute) << "edge " << e;
  }
}

TEST_P(BccRandomTest, TwoEdgesShareComponentIffOnCommonCycle) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(14, 14 + seed % 8, seed + 200);
  const auto bcc = biconnected_components(g);
  // Two distinct non-bridge edges lie in the same BCC iff the graph minus
  // either one still connects the endpoints of the other through both sides;
  // we use the simpler classical characterization via bridges within the
  // union: e and f are in a common simple cycle iff after removing e, f is
  // still not a bridge of the subgraph containing both... Instead test the
  // contrapositive with the vertex-removal oracle: edges in different BCCs
  // are separated by some articulation point.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (EdgeId f2 = e + 1; f2 < g.num_edges(); ++f2) {
      if (bcc.edge_component[e] == bcc.edge_component[f2]) continue;
      // There must exist an articulation point whose removal separates the
      // two edges (or they are in different connected components).
      bool separated = false;
      for (VertexId v = 0; v < g.num_vertices() && !separated; ++v) {
        if (!bcc.is_articulation[v]) continue;
        // Check endpoints of e and f2 fall apart without v.
        const auto [eu, ev] = g.endpoints(e);
        const auto [fu, fv] = g.endpoints(f2);
        const VertexId a = eu == v ? ev : eu;
        const VertexId c = fu == v ? fv : fu;
        // BFS from a avoiding v; if c unreachable, separated.
        std::vector<bool> vis(g.num_vertices(), false);
        std::vector<VertexId> st{a};
        vis[a] = true;
        while (!st.empty()) {
          const VertexId x = st.back();
          st.pop_back();
          for (const auto& he : g.neighbors(x)) {
            if (he.to == v || vis[he.to]) continue;
            vis[he.to] = true;
            st.push_back(he.to);
          }
        }
        if (!vis[c]) separated = true;
      }
      EXPECT_TRUE(separated) << "edges " << e << "," << f2;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BccRandomTest, ::testing::Range<std::uint64_t>(1, 13));

TEST(Bcc, ExtractComponentRemapsConsistently) {
  const Graph g = gen::block_tree({.num_blocks = 6,
                                   .largest_block = 12,
                                   .small_block_min = 3,
                                   .small_block_max = 5,
                                   .intra_degree = 3.0},
                                  23);
  const auto bcc = biconnected_components(g);
  for (std::uint32_t c = 0; c < bcc.num_components; ++c) {
    const SubgraphView view = extract_component(g, bcc, c);
    EXPECT_EQ(view.graph.num_edges(), bcc.component_edges(c).size());
    EXPECT_EQ(view.graph.num_vertices(), bcc.component_vertices(c).size());
    EXPECT_TRUE(view.graph.num_edges() <= 1 || is_biconnected(view.graph));
    for (EdgeId e = 0; e < view.graph.num_edges(); ++e) {
      const auto [lu, lv] = view.graph.endpoints(e);
      const auto [pu, pv] = g.endpoints(view.edge_to_parent[e]);
      const std::set<VertexId> local_mapped{view.to_parent[lu], view.to_parent[lv]};
      EXPECT_EQ(local_mapped, (std::set<VertexId>{pu, pv}));
      EXPECT_DOUBLE_EQ(view.graph.weight(e), g.weight(view.edge_to_parent[e]));
    }
  }
  EXPECT_THROW(extract_component(g, bcc, bcc.num_components), std::out_of_range);
}

TEST(Bcc, IsBiconnectedConventions) {
  EXPECT_TRUE(is_biconnected(gen::cycle(4)));
  EXPECT_TRUE(is_biconnected(gen::path(2)));  // K2 convention
  EXPECT_FALSE(is_biconnected(gen::path(3)));
  EXPECT_TRUE(is_biconnected(gen::petersen()));
  EXPECT_TRUE(is_biconnected(gen::wheel(8)));
  EXPECT_FALSE(is_biconnected(gen::block_tree({.num_blocks = 3,
                                               .largest_block = 5,
                                               .small_block_min = 3,
                                               .small_block_max = 4,
                                               .intra_degree = 2.5},
                                              3)));
}

// -------------------------------------------------------------- BlockCutTree

TEST(BlockCutTree, TwoTrianglesSharedVertex) {
  Builder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 2);
  const Graph g = std::move(b).build();
  const auto bcc = biconnected_components(g);
  const BlockCutTree tree(g, bcc);
  EXPECT_EQ(tree.num_blocks(), 2u);
  ASSERT_EQ(tree.cut_vertices().size(), 1u);
  EXPECT_EQ(tree.cut_vertices()[0], 2u);
  EXPECT_EQ(tree.neighbors(tree.cut_node(0)).size(), 2u);
  EXPECT_EQ(tree.blocks_of(2).size(), 2u);
  EXPECT_EQ(tree.blocks_of(0).size(), 1u);
  EXPECT_EQ(tree.cut_index(0), kNoComponent);
  EXPECT_NE(tree.cut_index(2), kNoComponent);
}

TEST(BlockCutTree, IsATree) {
  const Graph g = gen::block_tree({.num_blocks = 15,
                                   .largest_block = 18,
                                   .small_block_min = 3,
                                   .small_block_max = 6,
                                   .intra_degree = 3.0,
                                   .pendants = 7},
                                  31);
  const auto bcc = biconnected_components(g);
  const BlockCutTree tree(g, bcc);
  // A connected block-cut structure is a tree: edges = nodes - 1.
  std::size_t tree_edges = 0;
  for (std::uint32_t node = 0; node < tree.num_nodes(); ++node) {
    tree_edges += tree.neighbors(node).size();
  }
  tree_edges /= 2;
  EXPECT_EQ(tree_edges, tree.num_nodes() - 1);
}

// ----------------------------------------------------------- EarDecomposition

/// Checks the paper's definition: P0 ∪ P1 is a cycle; every later ear meets
/// earlier ears exactly in its endpoints; ears partition E.
void expect_valid_ear_decomposition(const Graph& g,
                                    const EarDecomposition& ed) {
  std::vector<std::uint32_t> edge_seen(g.num_edges(), 0);
  std::vector<bool> vertex_on_earlier(g.num_vertices(), false);
  ASSERT_FALSE(ed.ears.empty());
  ASSERT_TRUE(ed.ears.front().is_cycle());

  for (std::size_t i = 0; i < ed.ears.size(); ++i) {
    const Ear& ear = ed.ears[i];
    ASSERT_EQ(ear.vertices.size(), ear.edges.size() + 1);
    // Consecutive vertices joined by the listed edges.
    for (std::size_t k = 0; k < ear.edges.size(); ++k) {
      const auto [a, b] = g.endpoints(ear.edges[k]);
      const std::set<VertexId> got{ear.vertices[k], ear.vertices[k + 1]};
      EXPECT_EQ(got, (std::set<VertexId>{a, b}));
      ++edge_seen[ear.edges[k]];
      EXPECT_EQ(ed.edge_ear[ear.edges[k]], i);
    }
    if (i > 0 && ed.open) {
      // Endpoints on earlier ears; interior vertices fresh.
      EXPECT_TRUE(vertex_on_earlier[ear.vertices.front()]);
      EXPECT_TRUE(vertex_on_earlier[ear.vertices.back()]);
      for (std::size_t k = 1; k + 1 < ear.vertices.size(); ++k) {
        EXPECT_FALSE(vertex_on_earlier[ear.vertices[k]])
            << "ear " << i << " interior vertex " << ear.vertices[k];
      }
    }
    for (const VertexId v : ear.vertices) vertex_on_earlier[v] = true;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(edge_seen[e], 1u) << "edge " << e;
  }
}

TEST(EarDecomposition, CycleIsSingleEar) {
  const Graph g = gen::cycle(6);
  const auto ed = ear_decomposition(g);
  EXPECT_EQ(ed.ears.size(), 1u);
  EXPECT_TRUE(ed.open);
  expect_valid_ear_decomposition(g, ed);
}

TEST(EarDecomposition, ThetaGraphHasTwoEars) {
  // Two vertices joined by three internally disjoint paths.
  Builder b(8);
  b.add_edge(0, 2);
  b.add_edge(2, 1);
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 1);
  b.add_edge(0, 5);
  b.add_edge(5, 6);
  b.add_edge(6, 7);
  b.add_edge(7, 1);
  const Graph g = std::move(b).build();
  const auto ed = ear_decomposition(g);
  EXPECT_EQ(ed.ears.size(), 2u);  // m - n + 1 ears for 2-edge-connected
  EXPECT_TRUE(ed.open);
  expect_valid_ear_decomposition(g, ed);
}

TEST(EarDecomposition, NumberOfEarsIsCyclomaticNumber) {
  // For any 2-edge-connected graph the number of ears equals m - n + 1.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = gen::random_biconnected(30, static_cast<graph::EdgeId>(50 + 3 * seed), seed);
    const auto ed = ear_decomposition(g);
    EXPECT_EQ(ed.ears.size(), g.num_edges() - g.num_vertices() + 1);
    expect_valid_ear_decomposition(g, ed);
  }
}

TEST(EarDecomposition, OpenForBiconnectedGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = gen::random_biconnected(25, static_cast<graph::EdgeId>(40 + seed), seed * 7);
    const auto ed = ear_decomposition(g);
    EXPECT_TRUE(ed.open);
    expect_valid_ear_decomposition(g, ed);
  }
}

TEST(EarDecomposition, NotOpenAcrossCutVertex) {
  // Two triangles sharing vertex 2: 2-edge-connected but not 2-connected.
  Builder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 2);
  const Graph g = std::move(b).build();
  const auto ed = ear_decomposition(g);
  EXPECT_FALSE(ed.open);
  EXPECT_EQ(ed.ears.size(), 2u);
}

TEST(EarDecomposition, SubdividedGraphsKeepValidDecompositions) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph core = gen::random_biconnected(15, 25, seed);
    const Graph g = gen::subdivide(core, 40, seed + 50);
    const auto ed = ear_decomposition(g);
    EXPECT_TRUE(ed.open);
    expect_valid_ear_decomposition(g, ed);
    EXPECT_EQ(ed.ears.size(), g.num_edges() - g.num_vertices() + 1);
  }
}

TEST(EarDecomposition, HandlesParallelEdgesAndSelfLoops) {
  Builder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);  // parallel pair: a 2-edge cycle
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(1, 1);  // self-loop: closed single-edge ear
  const Graph g = std::move(b).build();
  const auto ed = ear_decomposition(g);
  expect_valid_ear_decomposition(g, ed);
  EXPECT_EQ(ed.ears.size(), 3u);
  // All edges covered exactly once, incl. loop and both parallels.
}

TEST(EarDecomposition, RejectsBridgesAndDisconnected) {
  EXPECT_THROW(ear_decomposition(gen::path(4)), std::invalid_argument);
  EXPECT_THROW(ear_decomposition(Graph{}), std::invalid_argument);
  Builder b(6);  // two disjoint triangles
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 3);
  EXPECT_THROW(ear_decomposition(std::move(b).build()), std::invalid_argument);
  // Two triangles joined by a bridge.
  Builder c(6);
  c.add_edge(0, 1);
  c.add_edge(1, 2);
  c.add_edge(2, 0);
  c.add_edge(3, 4);
  c.add_edge(4, 5);
  c.add_edge(5, 3);
  c.add_edge(2, 3);
  EXPECT_THROW(ear_decomposition(std::move(c).build()), std::invalid_argument);
}

}  // namespace
}  // namespace eardec::connectivity
namespace eardec::connectivity {
namespace {

namespace gen2 = graph::generators;

// ------------------------------------------------- parallel ear decomposition

/// The validity checker from above, reused for the parallel variant.
void expect_valid_parallel_ed(const graph::Graph& g) {
  const auto ed = parallel_ear_decomposition(g);
  // Same axioms as the sequential decomposition.
  std::vector<std::uint32_t> edge_seen(g.num_edges(), 0);
  std::vector<bool> on_earlier(g.num_vertices(), false);
  ASSERT_FALSE(ed.ears.empty());
  ASSERT_TRUE(ed.ears.front().is_cycle());
  for (std::size_t i = 0; i < ed.ears.size(); ++i) {
    const Ear& ear = ed.ears[i];
    ASSERT_EQ(ear.vertices.size(), ear.edges.size() + 1);
    for (std::size_t k = 0; k < ear.edges.size(); ++k) {
      const auto [a, b] = g.endpoints(ear.edges[k]);
      const std::set<VertexId> got{ear.vertices[k], ear.vertices[k + 1]};
      ASSERT_EQ(got, (std::set<VertexId>{a, b})) << "ear " << i;
      ++edge_seen[ear.edges[k]];
      EXPECT_EQ(ed.edge_ear[ear.edges[k]], i);
    }
    if (i > 0 && ed.open) {
      EXPECT_TRUE(on_earlier[ear.vertices.front()]) << "ear " << i;
      EXPECT_TRUE(on_earlier[ear.vertices.back()]) << "ear " << i;
      for (std::size_t k = 1; k + 1 < ear.vertices.size(); ++k) {
        EXPECT_FALSE(on_earlier[ear.vertices[k]]) << "ear " << i;
      }
    }
    for (const VertexId v : ear.vertices) on_earlier[v] = true;
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(edge_seen[e], 1u) << "edge " << e;
  }
}

TEST(ParallelEar, ValidOnBiconnectedFamilies) {
  expect_valid_parallel_ed(gen2::cycle(7));
  expect_valid_parallel_ed(gen2::petersen());
  expect_valid_parallel_ed(gen2::wheel(9));
  expect_valid_parallel_ed(gen2::complete(6));
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_valid_parallel_ed(gen2::subdivide(
        gen2::random_biconnected(16, 28, seed), 30, seed + 9));
  }
}

TEST(ParallelEar, SameEarCountAsSequential) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const graph::Graph g = gen2::random_biconnected(
        20, static_cast<graph::EdgeId>(34 + seed), seed * 5);
    const auto seq = ear_decomposition(g);
    const auto par = parallel_ear_decomposition(g);
    // Different valid decompositions, but always m - n + 1 ears.
    EXPECT_EQ(par.ears.size(), seq.ears.size());
    EXPECT_TRUE(par.open);
  }
}

TEST(ParallelEar, PoolAndSerialAgree) {
  const graph::Graph g =
      gen2::subdivide(gen2::random_biconnected(24, 44, 3), 50, 4);
  hetero::ThreadPool pool(3);
  const auto serial = parallel_ear_decomposition(g);
  const auto parallel = parallel_ear_decomposition(g, &pool);
  ASSERT_EQ(serial.ears.size(), parallel.ears.size());
  // The label rule is deterministic: identical decompositions either way.
  EXPECT_EQ(serial.edge_ear, parallel.edge_ear);
}

TEST(ParallelEar, HandlesSelfLoopsAndParallels) {
  graph::Builder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(1, 1);
  expect_valid_parallel_ed(std::move(b).build());
}

TEST(ParallelEar, RejectsBridgesAndDisconnected) {
  EXPECT_THROW((void)parallel_ear_decomposition(gen2::path(4)),
               std::invalid_argument);
  graph::Builder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 3);
  EXPECT_THROW((void)parallel_ear_decomposition(std::move(b).build()),
               std::invalid_argument);
}

TEST(ParallelEar, NotOpenAcrossCutVertex) {
  graph::Builder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 2);
  const auto ed = parallel_ear_decomposition(std::move(b).build());
  EXPECT_FALSE(ed.open);
  EXPECT_EQ(ed.ears.size(), 2u);
}

}  // namespace
}  // namespace eardec::connectivity
