// Tests for the perf_event PMU layer (src/obs/pmu.*): the graceful
// degradation contract (EARDEC_PMU=off and simulated permission denial
// must make every call a cheap no-op while the availability gauges record
// why), plus live-counter behavior on machines where the probe lands on a
// real tier (skipped elsewhere — CI containers typically deny perf).
//
// The engine is a process-wide singleton; every test pins its status via
// the *_for_test hooks and restores the disabled state on exit.
#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/pmu.hpp"
#include "obs/trace.hpp"

#if defined(__linux__)
#include <dirent.h>
#endif

namespace {

using namespace eardec;

#if defined(__linux__)
/// Number of open file descriptors in this process (for asserting that
/// counter groups are actually released).
std::size_t open_fd_count() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t n = 0;
  while (readdir(dir) != nullptr) ++n;
  closedir(dir);
  return n;
}
#endif

class PmuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("EARDEC_PMU");
    obs::PmuEngine::instance().reset_for_test();
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    unsetenv("EARDEC_PMU");
    obs::PmuEngine::instance().reset_for_test();
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
  }
};

TEST_F(PmuTest, StatusStringsCoverEveryTier) {
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kDisabled), "disabled");
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kHardware), "hardware");
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kSoftwareOnly),
               "software-only");
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kPermissionDenied),
               "permission-denied");
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kNoCounters), "no-counters");
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kUnsupported),
               "unsupported-platform");
}

TEST_F(PmuTest, EnvOffForcesDisabledAndPublishesWhy) {
  setenv("EARDEC_PMU", "off", 1);
  obs::PmuEngine& engine = obs::PmuEngine::instance();
  // enable() must lose against EARDEC_PMU=off — the CI fallback contract.
  EXPECT_EQ(engine.enable(true), obs::PmuStatus::kDisabled);
  EXPECT_EQ(engine.configure_from_env(), obs::PmuStatus::kDisabled);
  EXPECT_FALSE(engine.active());

  obs::PmuSample sample;
  EXPECT_FALSE(engine.read(sample));
  EXPECT_EQ(sample.mask, 0u);

  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_DOUBLE_EQ(reg.gauge_value("obs.pmu.available"), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("obs.pmu.status"),
                   static_cast<double>(obs::PmuStatus::kDisabled));
}

TEST_F(PmuTest, SimulatedPermissionDenialIsANoOp) {
  obs::PmuEngine& engine = obs::PmuEngine::instance();
  engine.force_status_for_test(obs::PmuStatus::kPermissionDenied);
  EXPECT_FALSE(engine.active());

  obs::PmuSample sample;
  EXPECT_FALSE(engine.read(sample));

  // A PMU span under a denied engine degrades to a plain span: recorded,
  // but with no counter payload.
  { obs::PmuScopedSpan span("pmu_test.denied"); }
  const auto events = obs::Tracer::instance().snapshot();
  if (obs::kTracingEnabled) {
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].event.name, "pmu_test.denied");
    EXPECT_EQ(events[0].event.pmu_mask, 0u);
  }

  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_DOUBLE_EQ(reg.gauge_value("obs.pmu.available"), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("obs.pmu.status"),
                   static_cast<double>(obs::PmuStatus::kPermissionDenied));
}

TEST_F(PmuTest, ScopedPhaseStillWorksWithoutCounters) {
  obs::PmuEngine::instance().force_status_for_test(
      obs::PmuStatus::kPermissionDenied);
  double field = 0;
  {
    obs::ScopedPhase phase(field, "pmu_test.phase", "pmu_test.phase_s");
  }
  EXPECT_GT(field, 0.0);
  EXPECT_DOUBLE_EQ(
      obs::MetricsRegistry::instance().gauge_value("pmu_test.phase_s"),
      field);
}

TEST_F(PmuTest, LiveCountersWhenAvailable) {
  obs::PmuEngine& engine = obs::PmuEngine::instance();
  const obs::PmuStatus status = engine.enable(true);
  if (static_cast<int>(status) <= 0) {
    GTEST_SKIP() << "no usable perf events here (status: "
                 << obs::to_string(status) << ")";
  }
  EXPECT_TRUE(engine.active());
  EXPECT_DOUBLE_EQ(
      obs::MetricsRegistry::instance().gauge_value("obs.pmu.available"), 1.0);

  obs::PmuSample before;
  ASSERT_TRUE(engine.read(before));
  ASSERT_NE(before.mask, 0u);
  // Burn some cycles so the counters move.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 200000; ++i) sink = sink + i;
  obs::PmuSample after;
  ASSERT_TRUE(engine.read(after));
  // Every tier includes the software task-clock; it must advance.
  ASSERT_NE(after.mask & (1u << obs::kPmuTaskClockNs), 0u);
  EXPECT_GT(after.v[obs::kPmuTaskClockNs], before.v[obs::kPmuTaskClockNs]);
  if (status == obs::PmuStatus::kHardware) {
    // Group members survive past open(): the read must carry more than the
    // cycles leader (a closed member fd silently drops out of the group).
    EXPECT_NE(after.mask & (1u << obs::kPmuInstructions), 0u);
    EXPECT_GT(after.v[obs::kPmuInstructions], before.v[obs::kPmuInstructions]);
  }

  // A finished PMU span lands in the trace with a payload and feeds the
  // process-wide totals.
  const obs::PmuSample totals_before = engine.totals();
  {
    obs::PmuScopedSpan span("pmu_test.live");
    for (std::uint64_t i = 0; i < 200000; ++i) sink = sink + i;
  }
  const obs::PmuSample totals_after = engine.totals();
  EXPECT_NE(totals_after.mask, 0u);
  EXPECT_GT(totals_after.v[obs::kPmuTaskClockNs],
            totals_before.v[obs::kPmuTaskClockNs]);
  if (obs::kTracingEnabled) {
    const auto events = obs::Tracer::instance().snapshot();
    ASSERT_FALSE(events.empty());
    EXPECT_STREQ(events.back().event.name, "pmu_test.live");
    EXPECT_NE(events.back().event.pmu_mask, 0u);
  }
}

#if defined(__linux__)
TEST_F(PmuTest, DisableReleasesThreadCounterGroups) {
  obs::PmuEngine& engine = obs::PmuEngine::instance();
  const obs::PmuStatus status = engine.enable(true);
  if (static_cast<int>(status) <= 0) {
    GTEST_SKIP() << "no usable perf events here (status: "
                 << obs::to_string(status) << ")";
  }
  // Settle to a clean baseline first: earlier tests can leave this
  // thread's group open (read() only reconciles lazily).
  obs::PmuSample sample;
  ASSERT_TRUE(engine.read(sample));
  engine.enable(false);
  EXPECT_FALSE(engine.read(sample));
  const std::size_t baseline = open_fd_count();

  ASSERT_GT(static_cast<int>(engine.enable(true)), 0);
  ASSERT_TRUE(engine.read(sample));  // opens this thread's group
  EXPECT_GT(open_fd_count(), baseline);

  // After disable, the first read() observing the inactive engine must
  // close the group — the fds must not linger until thread exit.
  EXPECT_EQ(engine.enable(false), obs::PmuStatus::kDisabled);
  EXPECT_FALSE(engine.read(sample));
  EXPECT_EQ(open_fd_count(), baseline);

  // Re-arming still works: a fresh group opens on the next read.
  ASSERT_GT(static_cast<int>(engine.enable(true)), 0);
  EXPECT_TRUE(engine.read(sample));
  EXPECT_GT(open_fd_count(), baseline);
}
#endif

}  // namespace
