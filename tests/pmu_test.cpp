// Tests for the perf_event PMU layer (src/obs/pmu.*): the graceful
// degradation contract (EARDEC_PMU=off and simulated permission denial
// must make every call a cheap no-op while the availability gauges record
// why), plus live-counter behavior on machines where the probe lands on a
// real tier (skipped elsewhere — CI containers typically deny perf).
//
// The engine is a process-wide singleton; every test pins its status via
// the *_for_test hooks and restores the disabled state on exit.
#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/pmu.hpp"
#include "obs/trace.hpp"

namespace {

using namespace eardec;

class PmuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("EARDEC_PMU");
    obs::PmuEngine::instance().reset_for_test();
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    unsetenv("EARDEC_PMU");
    obs::PmuEngine::instance().reset_for_test();
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
  }
};

TEST_F(PmuTest, StatusStringsCoverEveryTier) {
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kDisabled), "disabled");
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kHardware), "hardware");
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kSoftwareOnly),
               "software-only");
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kPermissionDenied),
               "permission-denied");
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kNoCounters), "no-counters");
  EXPECT_STREQ(obs::to_string(obs::PmuStatus::kUnsupported),
               "unsupported-platform");
}

TEST_F(PmuTest, EnvOffForcesDisabledAndPublishesWhy) {
  setenv("EARDEC_PMU", "off", 1);
  obs::PmuEngine& engine = obs::PmuEngine::instance();
  // enable() must lose against EARDEC_PMU=off — the CI fallback contract.
  EXPECT_EQ(engine.enable(true), obs::PmuStatus::kDisabled);
  EXPECT_EQ(engine.configure_from_env(), obs::PmuStatus::kDisabled);
  EXPECT_FALSE(engine.active());

  obs::PmuSample sample;
  EXPECT_FALSE(engine.read(sample));
  EXPECT_EQ(sample.mask, 0u);

  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_DOUBLE_EQ(reg.gauge_value("obs.pmu.available"), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("obs.pmu.status"),
                   static_cast<double>(obs::PmuStatus::kDisabled));
}

TEST_F(PmuTest, SimulatedPermissionDenialIsANoOp) {
  obs::PmuEngine& engine = obs::PmuEngine::instance();
  engine.force_status_for_test(obs::PmuStatus::kPermissionDenied);
  EXPECT_FALSE(engine.active());

  obs::PmuSample sample;
  EXPECT_FALSE(engine.read(sample));

  // A PMU span under a denied engine degrades to a plain span: recorded,
  // but with no counter payload.
  { obs::PmuScopedSpan span("pmu_test.denied"); }
  const auto events = obs::Tracer::instance().snapshot();
  if (obs::kTracingEnabled) {
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].event.name, "pmu_test.denied");
    EXPECT_EQ(events[0].event.pmu_mask, 0u);
  }

  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_DOUBLE_EQ(reg.gauge_value("obs.pmu.available"), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("obs.pmu.status"),
                   static_cast<double>(obs::PmuStatus::kPermissionDenied));
}

TEST_F(PmuTest, ScopedPhaseStillWorksWithoutCounters) {
  obs::PmuEngine::instance().force_status_for_test(
      obs::PmuStatus::kPermissionDenied);
  double field = 0;
  {
    obs::ScopedPhase phase(field, "pmu_test.phase", "pmu_test.phase_s");
  }
  EXPECT_GT(field, 0.0);
  EXPECT_DOUBLE_EQ(
      obs::MetricsRegistry::instance().gauge_value("pmu_test.phase_s"),
      field);
}

TEST_F(PmuTest, LiveCountersWhenAvailable) {
  obs::PmuEngine& engine = obs::PmuEngine::instance();
  const obs::PmuStatus status = engine.enable(true);
  if (static_cast<int>(status) <= 0) {
    GTEST_SKIP() << "no usable perf events here (status: "
                 << obs::to_string(status) << ")";
  }
  EXPECT_TRUE(engine.active());
  EXPECT_DOUBLE_EQ(
      obs::MetricsRegistry::instance().gauge_value("obs.pmu.available"), 1.0);

  obs::PmuSample before;
  ASSERT_TRUE(engine.read(before));
  ASSERT_NE(before.mask, 0u);
  // Burn some cycles so the counters move.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 200000; ++i) sink = sink + i;
  obs::PmuSample after;
  ASSERT_TRUE(engine.read(after));
  // Every tier includes the software task-clock; it must advance.
  ASSERT_NE(after.mask & (1u << obs::kPmuTaskClockNs), 0u);
  EXPECT_GT(after.v[obs::kPmuTaskClockNs], before.v[obs::kPmuTaskClockNs]);

  // A finished PMU span lands in the trace with a payload and feeds the
  // process-wide totals.
  const obs::PmuSample totals_before = engine.totals();
  {
    obs::PmuScopedSpan span("pmu_test.live");
    for (std::uint64_t i = 0; i < 200000; ++i) sink = sink + i;
  }
  const obs::PmuSample totals_after = engine.totals();
  EXPECT_NE(totals_after.mask, 0u);
  EXPECT_GT(totals_after.v[obs::kPmuTaskClockNs],
            totals_before.v[obs::kPmuTaskClockNs]);
  if (obs::kTracingEnabled) {
    const auto events = obs::Tracer::instance().snapshot();
    ASSERT_FALSE(events.empty());
    EXPECT_STREQ(events.back().event.name, "pmu_test.live");
    EXPECT_NE(events.back().event.pmu_mask, 0u);
  }
}

}  // namespace
