// Golden fingerprints of every Table-1 dataset stand-in. The bench
// narrative (EXPERIMENTS.md) is tied to these exact graphs; if a generator
// change shifts them, this test fails loudly so the calibration and the
// recorded measurements get revisited together rather than drifting apart.
#include <gtest/gtest.h>

#include "graph/datasets.hpp"

namespace eardec::graph::datasets {
namespace {

struct Golden {
  const char* name;
  VertexId v;
  EdgeId e;
  double weight;
  VertexId small_v;
  EdgeId small_e;
  double small_weight;
};

constexpr Golden kGolden[] = {
    {"nopoly", 320u, 960u, 44628.0, 120u, 360u, 18489.0},
    {"OPF_3754", 469u, 2649u, 133418.0, 153u, 863u, 41743.0},
    {"ca-AstroPh", 605u, 4865u, 239095.0, 212u, 1272u, 61581.0},
    {"as-22july06", 701u, 1313u, 38650.0, 321u, 522u, 13789.0},
    {"c-50", 688u, 2798u, 124197.0, 229u, 929u, 40551.0},
    {"cond_mat_2003", 624u, 1806u, 91156.0, 181u, 486u, 25597.0},
    {"delaunay_n15", 1024u, 2945u, 149706.0, 144u, 385u, 19910.0},
    {"Rajat26", 1174u, 4046u, 206075.0, 223u, 659u, 32481.0},
    {"Wordnet3", 3010u, 3359u, 47624.0, 628u, 700u, 11171.0},
    {"soc-sign-epinions", 3818u, 11071u, 424802.0, 728u, 1543u, 53209.0},
    {"Planar_1", 674u, 1439u, 67795.0, 220u, 472u, 22627.0},
    {"Planar_2", 827u, 1772u, 87909.0, 254u, 558u, 27768.0},
    {"Planar_3", 1167u, 2263u, 102331.0, 364u, 705u, 34459.0},
    {"Planar_4", 1381u, 2858u, 129350.0, 422u, 854u, 38952.0},
    {"Planar_5", 1553u, 3324u, 153589.0, 481u, 993u, 44846.0},
};

TEST(DatasetGolden, FingerprintsAreStable) {
  const auto& registry = table1();
  ASSERT_EQ(registry.size(), std::size(kGolden));
  for (std::size_t i = 0; i < registry.size(); ++i) {
    SCOPED_TRACE(registry[i].name);
    const Golden& want = kGolden[i];
    EXPECT_EQ(registry[i].name, want.name);
    const Graph g = registry[i].make();
    EXPECT_EQ(g.num_vertices(), want.v);
    EXPECT_EQ(g.num_edges(), want.e);
    EXPECT_NEAR(g.total_weight(), want.weight, 0.5);
    const Graph h = registry[i].make_small();
    EXPECT_EQ(h.num_vertices(), want.small_v);
    EXPECT_EQ(h.num_edges(), want.small_e);
    EXPECT_NEAR(h.total_weight(), want.small_weight, 0.5);
  }
}

}  // namespace
}  // namespace eardec::graph::datasets
