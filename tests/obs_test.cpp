// Tests for the observability layer (src/obs): span recording and ordering,
// ring-buffer wraparound accounting, histogram bucket boundaries, the
// Chrome trace / metrics JSON exporters (round-tripped through a minimal
// JSON parser), and the compile-time/runtime disable gates.
//
// The tracer and registry are process-wide singletons, so every test that
// inspects them clears/resets first and runs single-threaded unless it is
// specifically exercising cross-thread lanes.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/query_trace.hpp"
#include "obs/sampler.hpp"
#include "obs/slow_log.hpp"
#include "obs/trace.hpp"

namespace {

using namespace eardec;

// --- minimal JSON parser (objects, arrays, strings, numbers, bools) -----
//
// Just enough to round-trip the exporters' output; rejects anything
// malformed by throwing, which the tests surface as failures.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonObject>, std::shared_ptr<JsonArray>>
      v;

  [[nodiscard]] const JsonObject& obj() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& arr() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] double num() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing json");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("eof");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected ") + c + " at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return {string()};
      case 't': literal("true"); return {true};
      case 'f': literal("false"); return {false};
      case 'n': literal("null"); return {nullptr};
      default: return {number()};
    }
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_++] != *p) {
        throw std::runtime_error("bad literal");
      }
    }
  }

  JsonValue object() {
    expect('{');
    auto out = std::make_shared<JsonObject>();
    if (peek() == '}') {
      ++pos_;
      return {out};
    }
    for (;;) {
      const std::string key = string();
      expect(':');
      (*out)[key] = value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return {out};
    }
  }

  JsonValue array() {
    expect('[');
    auto out = std::make_shared<JsonArray>();
    if (peek() == ']') {
      ++pos_;
      return {out};
    }
    for (;;) {
      out->push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return {out};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            const unsigned long cp = std::stoul(text_.substr(pos_, 4), nullptr,
                                                16);
            pos_ += 4;
            c = static_cast<char>(cp);  // exporter only emits ASCII escapes
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) throw std::runtime_error("bad number");
    return std::stod(text_.substr(start, pos_ - start));
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- fixtures -----------------------------------------------------------

class ObsTracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
  }
};

// --- tracer -------------------------------------------------------------

TEST(ObsCompileGate, NullSpanIsEmptyAndScopedSpanIsNot) {
  // The disabled build's macro must cost nothing: the object EARDEC_TRACE_
  // SCOPE degrades to is statically empty.
  static_assert(std::is_empty_v<obs::NullSpan>);
  static_assert(!std::is_empty_v<obs::ScopedSpan>);
  SUCCEED();
}

TEST(ObsCompileGate, MacroMatchesCompileSwitch) {
  // In this build tracing is compiled in iff kTracingEnabled; the macro is
  // exercised everywhere else, here we just pin the constant to the build
  // configuration so a wrong CMake wiring fails loudly.
  EXPECT_EQ(obs::kTracingEnabled, EARDEC_TRACING_ENABLED != 0);
}

TEST_F(ObsTracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);
  { EARDEC_TRACE_SCOPE("obs_test.disabled"); }
  tracer.record_span("obs_test.direct", 0, 1);
  EXPECT_EQ(tracer.recorded_events(), 0u);
}

TEST_F(ObsTracerTest, NestedSpansOrderAndContainment) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  {
    EARDEC_TRACE_SCOPE("obs_test.outer");
    {
      EARDEC_TRACE_SCOPE("obs_test.inner", "arg", 42);
    }
  }
  const auto events = obs::Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // snapshot() sorts by start time: outer opened first.
  EXPECT_STREQ(events[0].event.name, "obs_test.outer");
  EXPECT_STREQ(events[1].event.name, "obs_test.inner");
  EXPECT_STREQ(events[1].event.arg_name, "arg");
  EXPECT_EQ(events[1].event.arg, 42u);
  // The inner span nests inside the outer one on the timeline.
  const auto& outer = events[0].event;
  const auto& inner = events[1].event;
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  // Both recorded on the same lane.
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(ObsTracerTest, RingWraparoundKeepsNewestAndCountsDrops) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  obs::Tracer& tracer = obs::Tracer::instance();
  constexpr std::size_t kExtra = 100;
  const std::size_t total = obs::Tracer::kRingCapacity + kExtra;
  for (std::size_t i = 0; i < total; ++i) {
    tracer.record_span("obs_test.wrap", /*start_ns=*/i, /*dur_ns=*/1);
  }
  EXPECT_EQ(tracer.recorded_events(), obs::Tracer::kRingCapacity);
  EXPECT_EQ(tracer.dropped_events(), kExtra);
  // The ring keeps the newest events: the oldest retained start time is
  // exactly the number of dropped events.
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), obs::Tracer::kRingCapacity);
  EXPECT_EQ(events.front().event.start_ns, kExtra);
  EXPECT_EQ(events.back().event.start_ns, total - 1);
  // clear() resets both gauges.
  tracer.clear();
  EXPECT_EQ(tracer.recorded_events(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST_F(ObsTracerTest, LanesFromExitedThreadsAreRecycled) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  obs::Tracer& tracer = obs::Tracer::instance();
  // Sequential short-lived threads (the scheduler's per-drain jthreads)
  // must reuse one lane instead of growing the registry.
  for (int round = 0; round < 8; ++round) {
    std::thread([&] {
      tracer.set_current_thread_name("recycled");
      tracer.record_span("obs_test.lane", 0, 1);
    }).join();
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (const auto& e : events) {
    EXPECT_EQ(e.tid, events.front().tid);
    EXPECT_EQ(e.thread_name, "recycled");
  }
}

TEST_F(ObsTracerTest, ChromeTraceExportRoundTrips) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_current_thread_name("main-thread");
  tracer.record_span("obs_test.export \"quoted\"", 2000, 3000, "units", 7);
  std::ostringstream out;
  tracer.write_chrome_trace(out);

  const JsonValue doc = JsonParser(out.str()).parse();
  const JsonArray& events = doc.obj().at("traceEvents").arr();
  bool saw_span = false;
  bool saw_thread_name = false;
  for (const JsonValue& ev : events) {
    const JsonObject& e = ev.obj();
    const std::string& ph = e.at("ph").str();
    if (ph == "X" && e.at("name").str() == "obs_test.export \"quoted\"") {
      saw_span = true;
      // Chrome trace timestamps are microseconds.
      EXPECT_DOUBLE_EQ(e.at("ts").num(), 2.0);
      EXPECT_DOUBLE_EQ(e.at("dur").num(), 3.0);
      EXPECT_DOUBLE_EQ(e.at("args").obj().at("units").num(), 7.0);
    }
    if (ph == "M" && e.at("name").str() == "thread_name" &&
        e.at("args").obj().at("name").str() == "main-thread") {
      saw_thread_name = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_thread_name);
}

// --- counter tracks and the background sampler --------------------------

TEST_F(ObsTracerTest, CounterEventExportRoundTrips) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.record_counter_at("obs_test.track", 1500, 2.5);
  tracer.record_counter_at("obs_test.track", 2500, 4.0);
  ASSERT_EQ(tracer.counter_samples().size(), 2u);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const JsonValue doc = JsonParser(out.str()).parse();
  std::size_t seen = 0;
  for (const JsonValue& ev : doc.obj().at("traceEvents").arr()) {
    const JsonObject& e = ev.obj();
    if (e.at("ph").str() != "C" || e.at("name").str() != "obs_test.track") {
      continue;
    }
    if (seen == 0) {
      // Counter timestamps are microseconds, like span timestamps.
      EXPECT_DOUBLE_EQ(e.at("ts").num(), 1.5);
      EXPECT_DOUBLE_EQ(e.at("args").obj().at("value").num(), 2.5);
    }
    ++seen;
  }
  EXPECT_EQ(seen, 2u);

  // clear() drops counter samples along with the spans.
  tracer.clear();
  EXPECT_TRUE(tracer.counter_samples().empty());
  EXPECT_EQ(tracer.dropped_counter_samples(), 0u);
}

TEST_F(ObsTracerTest, DisabledTracerRecordsNoCounterSamples) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);
  tracer.record_counter("obs_test.track", 1.0);
  EXPECT_TRUE(tracer.counter_samples().empty());
}

TEST_F(ObsTracerTest, SamplerStartStopEmitsCounterSamples) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("obs_test.sampled").reset();
  reg.counter("obs_test.sampled").add(11);

  obs::Sampler& sampler = obs::Sampler::instance();
  obs::Sampler::Options options;
  options.period_ms = 2;
  options.counters = {"obs_test.sampled"};
  const std::uint64_t ticks_before = sampler.ticks();
  sampler.start(options);
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  // At least the immediate first sample and the final stop() sample ran.
  EXPECT_GE(sampler.ticks() - ticks_before, 2u);

  bool saw_registry_track = false;
  for (const auto& s : obs::Tracer::instance().counter_samples()) {
    if (s.track == "obs_test.sampled") {
      saw_registry_track = true;
      EXPECT_DOUBLE_EQ(s.value, 11.0);
    }
  }
  EXPECT_TRUE(saw_registry_track);
}

TEST_F(ObsTracerTest, ExportWhileSamplingIsQuiesced) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  // Regression: snapshot()/write_chrome_trace()/clear() must be safe while
  // the sampler thread is live — the export path quiesces it through
  // sampler_gate() instead of relying on callers stopping it first. Run
  // under TSan (label: hetero) this is the data-race check.
  obs::Tracer& tracer = obs::Tracer::instance();
  obs::Sampler& sampler = obs::Sampler::instance();
  obs::Sampler::Options options;
  options.period_ms = 1;
  options.counters = {"obs_test.sampled"};
  sampler.start(options);
  for (int round = 0; round < 20; ++round) {
    tracer.record_span("obs_test.concurrent", 0, 1);
    std::ostringstream out;
    tracer.write_chrome_trace(out);
    // Every export parses, even mid-sampling.
    EXPECT_NO_THROW(JsonParser(out.str()).parse());
    (void)tracer.snapshot();
    (void)tracer.counter_samples();
  }
  sampler.stop();
}

// --- histogram ----------------------------------------------------------

TEST(ObsHistogram, BucketBoundaries) {
  // Bucket 0 is exactly {0}; bucket i >= 1 covers [2^(i-1), 2^i - 1].
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_index(7), 3u);
  EXPECT_EQ(obs::Histogram::bucket_index(8), 4u);
  EXPECT_EQ(obs::Histogram::bucket_index(~std::uint64_t{0}), 64u);
  for (std::size_t i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    // Every bucket's own bounds map back into the bucket, and the bounds
    // tile the uint64 range without gaps.
    EXPECT_EQ(obs::Histogram::bucket_index(obs::Histogram::bucket_min(i)), i);
    EXPECT_EQ(obs::Histogram::bucket_index(obs::Histogram::bucket_max(i)), i);
    if (i + 1 < obs::Histogram::kNumBuckets) {
      EXPECT_EQ(obs::Histogram::bucket_max(i) + 1,
                obs::Histogram::bucket_min(i + 1));
    }
  }
}

TEST(ObsHistogram, RecordAccumulates) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 11u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(ObsHistogram, QuantileEmptyHistogramIsZero) {
  const obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(ObsHistogram, QuantileSingleSampleInterpolatesWithinBucket) {
  obs::Histogram h;
  h.record(5);  // bucket 3: [4, 7]
  // With one sample the estimate sweeps the owning bucket linearly in q:
  // q -> 0 gives the bucket floor, q = 1 its ceiling. Both ends stay
  // within a factor of two of the true value 5 (the documented bound).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 4.0);
  EXPECT_LE(median, 7.0);
  EXPECT_GE(median, 5.0 / 2.0);
  EXPECT_LE(median, 5.0 * 2.0);
}

TEST(ObsHistogram, QuantileClampsOutOfRangeQ) {
  obs::Histogram h;
  h.record(5);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.5), h.quantile(1.0));
}

TEST(ObsHistogram, QuantileTracksDistributionShape) {
  obs::Histogram h;
  // 90 fast samples around 10 and 10 slow ones around 1000: the median
  // must sit in the fast bucket and the p99 in the slow one.
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1000);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, static_cast<double>(obs::Histogram::bucket_min(4)));
  EXPECT_LE(p50, static_cast<double>(obs::Histogram::bucket_max(4)));
  EXPECT_GE(p99, static_cast<double>(obs::Histogram::bucket_min(10)));
  EXPECT_LE(p99, static_cast<double>(obs::Histogram::bucket_max(10)));
  EXPECT_LT(p50, p99);
}

TEST(ObsHistogram, QuantileAllSamplesInOverflowBucket) {
  obs::Histogram h;
  // The top bucket's range is astronomically wide; the estimate must stay
  // inside it and not overflow to inf or wrap.
  h.record(~std::uint64_t{0});
  h.record(~std::uint64_t{0} - 1);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, static_cast<double>(obs::Histogram::bucket_min(64)));
    EXPECT_LE(v, static_cast<double>(obs::Histogram::bucket_max(64)));
  }
}

TEST(ObsHistogram, QuantilesAreMonotoneInQ) {
  obs::Histogram h;
  std::uint64_t v = 1;
  for (int i = 0; i < 300; ++i) {
    h.record(v);
    v = v * 29 % 9973;  // deterministic spread over several buckets
  }
  double prev = h.quantile(0.0);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "quantile not monotone at q=" << q;
    prev = cur;
  }
}

TEST(ObsHistogram, QuantileUnderConcurrentWritersStaysBoundedAndExact) {
  // The serving layer reads latency quantiles from /metrics while worker
  // threads keep recording. quantile() is documented as safe-but-
  // approximate under concurrency: while writers run, every estimate must
  // stay inside the recorded value range (no inf/NaN/garbage from torn
  // bucket reads); after the writers join, quantiles are the exact
  // single-threaded answers for the final counts.
  obs::Histogram h;
  constexpr std::uint64_t kLo = 3, kHi = 50000;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h, &go, w] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t v = 17 + static_cast<std::uint64_t>(w);
      for (int i = 0; i < kPerWriter; ++i) {
        v = v * 29 % (kHi - kLo);
        h.record(kLo + v);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Read quantiles concurrently with the writers.
  const double hi_bound =
      static_cast<double>(obs::Histogram::bucket_max(
          obs::Histogram::bucket_index(kHi)));
  for (int round = 0; round < 2000; ++round) {
    for (const double q : {0.0, 0.5, 0.99, 1.0}) {
      const double v = h.quantile(q);
      EXPECT_TRUE(std::isfinite(v)) << "q=" << q;
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, hi_bound) << "q=" << q;
    }
  }
  for (auto& t : writers) t.join();
  // Quiescent: the count is complete and quantiles are strictly monotone
  // in q, bounded by the recorded range's buckets.
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  double prev = h.quantile(0.0);
  EXPECT_GE(prev, static_cast<double>(obs::Histogram::bucket_min(
                      obs::Histogram::bucket_index(kLo))));
  for (const double q : {0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "quantile not monotone at q=" << q;
    prev = cur;
  }
  EXPECT_LE(prev, hi_bound);
}

// --- registry -----------------------------------------------------------

TEST(ObsRegistry, InstrumentsAreStableAndReadable) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& c = reg.counter("obs_test.counter");
  c.reset();
  c.add(3);
  // Same name -> same instrument.
  EXPECT_EQ(&reg.counter("obs_test.counter"), &c);
  EXPECT_EQ(reg.counter_value("obs_test.counter"), 3u);
  reg.gauge("obs_test.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value("obs_test.gauge"), 2.5);
  // Reads never create: unknown names answer 0.
  EXPECT_EQ(reg.counter_value("obs_test.never_created"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("obs_test.never_created"), 0.0);
}

TEST(ObsRegistry, JsonExportRoundTrips) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("obs_test.json_counter").reset();
  reg.counter("obs_test.json_counter").add(41);
  reg.gauge("obs_test.json_gauge").set(1.5);
  obs::Histogram& h = reg.histogram("obs_test.json_histo");
  h.reset();
  h.record(3);
  h.record(100);

  std::ostringstream out;
  reg.write_json(out);
  const JsonValue doc = JsonParser(out.str()).parse();
  const JsonObject& root = doc.obj();
  EXPECT_DOUBLE_EQ(
      root.at("counters").obj().at("obs_test.json_counter").num(), 41.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").obj().at("obs_test.json_gauge").num(),
                   1.5);
  const JsonObject& histo =
      root.at("histograms").obj().at("obs_test.json_histo").obj();
  EXPECT_DOUBLE_EQ(histo.at("count").num(), 2.0);
  EXPECT_DOUBLE_EQ(histo.at("sum").num(), 103.0);
  // The derived quantiles ride along and agree with the instrument.
  EXPECT_DOUBLE_EQ(histo.at("p50").num(), h.quantile(0.50));
  EXPECT_DOUBLE_EQ(histo.at("p90").num(), h.quantile(0.90));
  EXPECT_DOUBLE_EQ(histo.at("p99").num(), h.quantile(0.99));
  EXPECT_LE(histo.at("p50").num(), histo.at("p99").num());
  // Bucket list: per-bucket counts must sum back to the total.
  double bucket_total = 0;
  for (const JsonValue& b : histo.at("buckets").arr()) {
    bucket_total += b.obj().at("count").num();
  }
  EXPECT_DOUBLE_EQ(bucket_total, 2.0);
}

TEST(ObsRegistry, CsvExportContainsInstrumentRows) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("obs_test.csv_counter").reset();
  reg.counter("obs_test.csv_counter").add(7);
  std::ostringstream out;
  reg.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,obs_test.csv_counter,value,7"),
            std::string::npos);
}

// --- linked spans & per-query trace context -----------------------------

TEST_F(ObsTracerTest, LinkedSpanSnapshotAndExportCarryTreeIds) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.record_span_linked("obs_test.linked", 1000, 2000, /*qid=*/77,
                            /*span_id=*/2, /*parent_id=*/1, "legs", 3);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].event.qid, 77u);
  EXPECT_EQ(events[0].event.span_id, 2u);
  EXPECT_EQ(events[0].event.parent_id, 1u);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const JsonValue doc = JsonParser(out.str()).parse();
  bool saw = false;
  for (const JsonValue& ev : doc.obj().at("traceEvents").arr()) {
    const JsonObject& e = ev.obj();
    if (e.at("ph").str() != "X") continue;
    saw = true;
    const JsonObject& args = e.at("args").obj();
    EXPECT_DOUBLE_EQ(args.at("qid").num(), 77.0);
    EXPECT_DOUBLE_EQ(args.at("span").num(), 2.0);
    EXPECT_DOUBLE_EQ(args.at("parent").num(), 1.0);
    EXPECT_DOUBLE_EQ(args.at("legs").num(), 3.0);
  }
  EXPECT_TRUE(saw);
}

TEST_F(ObsTracerTest, UnlinkedSpanExportsNoLinkArgs) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.record_span("obs_test.plain", 0, 1);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const JsonValue doc = JsonParser(out.str()).parse();
  for (const JsonValue& ev : doc.obj().at("traceEvents").arr()) {
    const JsonObject& e = ev.obj();
    if (e.at("ph").str() != "X") continue;
    // qid == 0 means unlinked: the exporter must not add an args object
    // (critical_path.py keys on args.qid to find stitched spans).
    EXPECT_EQ(e.count("args"), 0u);
  }
}

TEST_F(ObsTracerTest, QueryTraceScopeNestsAndQuerySpansChainParents) {
  EXPECT_EQ(obs::current_query_trace(), nullptr);
  obs::QueryTrace qt;
  EXPECT_NE(qt.query_id(), 0u);
  {
    const obs::QueryTraceScope scope(&qt);
    EXPECT_EQ(obs::current_query_trace(), &qt);
    EXPECT_EQ(obs::current_parent_span(), 0u);
    std::uint32_t outer_id = 0;
    {
      const obs::QuerySpan outer("obs_test.q_outer");
      outer_id = outer.span_id();
      EXPECT_NE(outer_id, 0u);
      EXPECT_EQ(obs::current_parent_span(), outer_id);
      {
        const obs::QuerySpan inner("obs_test.q_inner", "arg", 5);
        EXPECT_NE(inner.span_id(), outer_id);
        EXPECT_EQ(obs::current_parent_span(), inner.span_id());
      }
      EXPECT_EQ(obs::current_parent_span(), outer_id);
    }
    EXPECT_EQ(obs::current_parent_span(), 0u);
  }
  EXPECT_EQ(obs::current_query_trace(), nullptr);
  if (obs::kTracingEnabled) {
    // Both spans landed in the tracer with this query's id, and the inner
    // one parents under the outer (snapshot sorts by start time).
    const auto events = obs::Tracer::instance().snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_STREQ(events[0].event.name, "obs_test.q_outer");
    EXPECT_STREQ(events[1].event.name, "obs_test.q_inner");
    EXPECT_EQ(events[0].event.qid, qt.query_id());
    EXPECT_EQ(events[1].event.qid, qt.query_id());
    EXPECT_EQ(events[0].event.parent_id, 0u);
    EXPECT_EQ(events[1].event.parent_id, events[0].event.span_id);
  }
}

TEST_F(ObsTracerTest, QuerySpanWithoutContextIsInert) {
  const obs::QuerySpan span("obs_test.orphan");
  EXPECT_EQ(span.span_id(), 0u);
  EXPECT_EQ(obs::current_parent_span(), 0u);
}

TEST_F(ObsTracerTest, CrossThreadScopeReinstallJoinsTheSameTree) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  // The hetero worker-callback pattern: the worker lane re-installs the
  // query's context with the root span id, so its spans parent under the
  // root despite running on another thread.
  obs::QueryTrace qt;
  std::uint32_t root_id = 0;
  {
    const obs::QueryTraceScope scope(&qt);
    const obs::QuerySpan root("obs_test.x_root");
    root_id = root.span_id();
    std::thread worker([&qt, root_id] {
      const obs::QueryTraceScope wscope(&qt, root_id);
      const obs::QuerySpan unit("obs_test.x_unit");
      EXPECT_NE(unit.span_id(), 0u);
    });
    worker.join();
  }
  const auto events = obs::Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  for (const auto& e : events) {
    EXPECT_EQ(e.event.qid, qt.query_id());
    if (std::string_view(e.event.name) == "obs_test.x_unit") {
      EXPECT_EQ(e.event.parent_id, root_id);
    }
  }
}

TEST_F(ObsTracerTest, ConcurrentLinkedWraparoundUnderCounterLoad) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  // Satellite of the per-query tracing work: several lanes wrap their span
  // rings with linked spans while another thread hammers the counter path
  // (which also feeds the flight recorder's seqlocked mirror). Run under
  // TSan via `ctest -L hetero`. Afterwards every lane must retain exactly
  // the newest kRingCapacity spans with their link fields intact.
  obs::Tracer& tracer = obs::Tracer::instance();
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kExtra = 256;
  constexpr std::size_t kPerThread = obs::Tracer::kRingCapacity + kExtra;
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::thread counter_thread([&tracer, &stop] {
    std::uint64_t ts = 0;
    while (!stop.load(std::memory_order_acquire)) {
      tracer.record_counter_at("obs_test.load", ts, 1.0);
      ts += 1000;
    }
  });
  std::vector<std::thread> lanes;
  lanes.reserve(kThreads);
  for (std::size_t w = 0; w < kThreads; ++w) {
    lanes.emplace_back([&tracer, &ready, &go, w] {
      const std::uint64_t qid = w + 1;
      // Claim the lane BEFORE signaling readiness: acquisition is lazy (on
      // the first recorded event) and release happens at thread exit, so a
      // writer that only claimed after `go` could recycle the ring of a
      // sibling that already finished — merging two writers into one lane.
      tracer.record_span_linked("obs_test.linked_wrap", /*start_ns=*/0,
                                /*dur_ns=*/1, qid, /*span_id=*/1,
                                /*parent_id=*/7);
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 1; i < kPerThread; ++i) {
        tracer.record_span_linked("obs_test.linked_wrap", /*start_ns=*/i,
                                  /*dur_ns=*/1, qid,
                                  static_cast<std::uint32_t>(i + 1),
                                  /*parent_id=*/7);
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < kThreads) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& t : lanes) t.join();
  stop.store(true, std::memory_order_release);
  counter_thread.join();

  EXPECT_EQ(tracer.recorded_events(),
            kThreads * obs::Tracer::kRingCapacity);
  EXPECT_EQ(tracer.dropped_events(), kThreads * kExtra);
  std::map<std::uint64_t, std::size_t> per_qid_count;
  std::map<std::uint64_t, std::uint32_t> per_qid_min_span;
  for (const auto& e : tracer.snapshot()) {
    ASSERT_GE(e.event.qid, 1u);
    ASSERT_LE(e.event.qid, kThreads);
    EXPECT_EQ(e.event.parent_id, 7u);
    ++per_qid_count[e.event.qid];
    auto [it, inserted] =
        per_qid_min_span.try_emplace(e.event.qid, e.event.span_id);
    if (!inserted) it->second = std::min(it->second, e.event.span_id);
  }
  ASSERT_EQ(per_qid_count.size(), kThreads);
  for (const auto& [qid, count] : per_qid_count) {
    EXPECT_EQ(count, obs::Tracer::kRingCapacity) << "qid=" << qid;
    // Newest-kept: the oldest surviving span id is exactly one past the
    // dropped prefix.
    EXPECT_EQ(per_qid_min_span[qid], kExtra + 1) << "qid=" << qid;
  }
  EXPECT_FALSE(tracer.counter_samples().empty());
}

// --- slow-query exemplar store ------------------------------------------

class ObsSlowLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SlowLog::instance().disarm();
    obs::SlowLog::instance().clear();
  }
  void TearDown() override {
    obs::SlowLog::instance().disarm();
    obs::SlowLog::instance().clear();
  }
};

TEST_F(ObsSlowLogTest, DisarmedObservesNothing) {
  auto& slow = obs::SlowLog::instance();
  EXPECT_FALSE(slow.armed());
  EXPECT_EQ(slow.observe(1000), obs::SlowLog::Keep::kNo);
  EXPECT_EQ(slow.observed(), 0u);
}

TEST_F(ObsSlowLogTest, UniformStrideSamplesEveryNth) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  auto& slow = obs::SlowLog::instance();
  slow.arm(/*uniform_stride=*/4);
  ASSERT_TRUE(slow.armed());
  int uniform = 0;
  for (int i = 1; i <= 12; ++i) {
    const auto keep = slow.observe(100);
    if (i % 4 == 0) {
      EXPECT_EQ(keep, obs::SlowLog::Keep::kUniform) << i;
      ++uniform;
    } else {
      EXPECT_EQ(keep, obs::SlowLog::Keep::kNo) << i;
    }
  }
  EXPECT_EQ(uniform, 3);
  EXPECT_EQ(slow.observed(), 12u);
}

TEST_F(ObsSlowLogTest, TailThresholdActivatesAfterWarmup) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  auto& slow = obs::SlowLog::instance();
  slow.arm(/*uniform_stride=*/0);
  // During warmup the threshold is +inf: even a slow query is not tail-kept.
  EXPECT_EQ(slow.observe(1'000'000'000), obs::SlowLog::Keep::kNo);
  EXPECT_EQ(slow.threshold_ns(), ~std::uint64_t{0});
  // Feed fast queries through the warmup boundary; the recompute at
  // n == 512 calibrates the threshold to the fast bucket.
  for (std::uint64_t n = slow.observed();
       n < obs::SlowLog::kWarmupObservations; ++n) {
    (void)slow.observe(100);
  }
  EXPECT_LT(slow.threshold_ns(), ~std::uint64_t{0});
  EXPECT_EQ(slow.observe(1'000'000'000), obs::SlowLog::Keep::kSlowTail);
  EXPECT_EQ(slow.observe(1), obs::SlowLog::Keep::kNo);
}

TEST_F(ObsSlowLogTest, RetainAndDumpRoundTrips) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  auto& slow = obs::SlowLog::instance();
  slow.arm(/*uniform_stride=*/1);
  // Armed at construction -> this trace collects its spans.
  obs::QueryTrace qt(/*arrival_ns_in=*/500);
  const std::uint32_t root = qt.allocate_span();
  qt.emit(root, 0, "obs_test.slow_root", 500, 4000);
  qt.emit(qt.allocate_span(), root, "obs_test.slow_leaf", 600, 1000);
  EXPECT_EQ(qt.span_count(), 2u);
  qt.attr_ns[std::size_t(obs::AttrComponent::kKernel)] = 3000;
  slow.retain(qt, /*total_ns=*/4200, obs::SlowLog::Keep::kUniform,
              /*s=*/11, /*t=*/22, /*batch=*/8, /*epoch=*/3);
  EXPECT_EQ(slow.retained(), 1u);

  const std::string json = slow.dump_json();
  const JsonValue doc = JsonParser(json).parse();
  const JsonObject& rootobj = doc.obj();
  EXPECT_EQ(rootobj.at("retained").num(), 1.0);
  const JsonArray& exemplars = rootobj.at("exemplars").arr();
  ASSERT_EQ(exemplars.size(), 1u);
  const JsonObject& ex = exemplars[0].obj();
  EXPECT_DOUBLE_EQ(ex.at("query_id").num(),
                   static_cast<double>(qt.query_id()));
  EXPECT_EQ(ex.at("reason").str(), "sample");
  EXPECT_DOUBLE_EQ(ex.at("total_ns").num(), 4200.0);
  EXPECT_DOUBLE_EQ(ex.at("batch").num(), 8.0);
  EXPECT_DOUBLE_EQ(ex.at("attr_ns").obj().at("kernel").num(), 3000.0);
  const JsonArray& spans = ex.at("spans").arr();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].obj().at("name").str(), "obs_test.slow_root");
  EXPECT_DOUBLE_EQ(spans[1].obj().at("parent").num(),
                   static_cast<double>(root));

  slow.clear();
  EXPECT_EQ(slow.retained(), 0u);
  EXPECT_EQ(slow.observed(), 0u);
}

TEST_F(ObsSlowLogTest, SpanCollectionRespectsArmingAndOverflowCounts) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  auto& slow = obs::SlowLog::instance();
  // Disarmed at construction: spans are emitted but never collected.
  obs::QueryTrace cold;
  cold.emit(cold.allocate_span(), 0, "obs_test.cold", 0, 1);
  EXPECT_EQ(cold.span_count(), 0u);
  slow.arm();
  obs::QueryTrace hot;
  for (std::size_t i = 0; i < obs::QueryTrace::kMaxSpans + 5; ++i) {
    hot.emit(hot.allocate_span(), 0, "obs_test.hot", i, 1);
  }
  // Overflowing spans are counted, not retained (the exemplar's span list
  // is a fixed-size snapshot).
  EXPECT_EQ(hot.span_count(), obs::QueryTrace::kMaxSpans);
}

// --- flight recorder ----------------------------------------------------

TEST(ObsFlightRecorder, DumpNowWritesParseableSnapshot) {
  obs::Tracer::instance().clear();
  obs::Tracer::instance().set_enabled(true);
  obs::Tracer::instance().record_span_linked("obs_test.flight \"q\"", 1000,
                                             2000, 9, 1, 0, "units", 4);
  obs::Tracer::instance().record_counter_at("obs_test.flight_track", 1500,
                                            2.5);
  const std::string path = "obs_test_flight.json";
  auto& flight = obs::FlightRecorder::instance();
  if (!flight.arm(path)) {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
    GTEST_SKIP() << "flight recorder unavailable (tracing off / non-POSIX)";
  }
  EXPECT_TRUE(flight.armed());
  EXPECT_EQ(flight.path(), path);
  ASSERT_TRUE(flight.dump_now("unit-test"));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  const JsonValue doc = JsonParser(content.str()).parse();
  const JsonObject& root = doc.obj();
  EXPECT_DOUBLE_EQ(root.at("flight").num(), 1.0);
  EXPECT_EQ(root.at("reason").str(), "unit-test");
  bool saw_span = false;
  for (const JsonValue& lane : root.at("lanes").arr()) {
    for (const JsonValue& ev : lane.obj().at("events").arr()) {
      const JsonObject& e = ev.obj();
      // The signal-safe writer sanitizes quotes rather than escaping them.
      if (e.at("name").str().rfind("obs_test.flight", 0) == 0) {
        saw_span = true;
        EXPECT_DOUBLE_EQ(e.at("qid").num(), 9.0);
        EXPECT_DOUBLE_EQ(e.at("span").num(), 1.0);
        EXPECT_DOUBLE_EQ(e.at("arg").num(), 4.0);
      }
    }
  }
  EXPECT_TRUE(saw_span);
  bool saw_counter = false;
  for (const JsonValue& c : root.at("counters").arr()) {
    if (c.obj().at("track").str() == "obs_test.flight_track") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(c.obj().at("value").num(), 2.5);
    }
  }
  EXPECT_TRUE(saw_counter);
  std::remove(path.c_str());
  obs::Tracer::instance().set_enabled(false);
  obs::Tracer::instance().clear();
}

// --- phase helper -------------------------------------------------------

TEST(ObsScopedPhase, AccumulatesIntoFieldGaugeAndTrace) {
  obs::Tracer::instance().clear();
  obs::Tracer::instance().set_enabled(true);
  double field = 0;
  {
    obs::ScopedPhase phase(field, "obs_test.phase", "obs_test.phase_s");
  }
  {
    obs::ScopedPhase phase(field, "obs_test.phase", "obs_test.phase_s");
  }
  EXPECT_GT(field, 0.0);
  // The gauge carries the accumulated total of both rounds.
  EXPECT_DOUBLE_EQ(obs::MetricsRegistry::instance().gauge_value(
                       "obs_test.phase_s"),
                   field);
  if (obs::kTracingEnabled) {
    const auto events = obs::Tracer::instance().snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_STREQ(events[0].event.name, "obs_test.phase");
  }
  obs::Tracer::instance().set_enabled(false);
  obs::Tracer::instance().clear();
}

}  // namespace
