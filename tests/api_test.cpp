// Coverage for the remaining public API surface: engine accessors, the
// paper-faithful full tables, stats/timings structures, option defaults,
// and the smaller helpers the feature tests exercise only incidentally.
#include <gtest/gtest.h>

#include "core/distance_oracle.hpp"
#include "core/ear_apsp.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "mcb/ear_mcb.hpp"
#include "sssp/dijkstra.hpp"

namespace eardec {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::Graph;
using graph::VertexId;

TEST(ApiEngine, AccessorsAreConsistent) {
  Graph g = gen::block_tree({.num_blocks = 4,
                             .largest_block = 10,
                             .small_block_min = 3,
                             .small_block_max = 5,
                             .intra_degree = 3.0,
                             .pendants = 2},
                            9);
  g = gen::subdivide(g, 12, 10);
  const core::EarApspEngine engine(g, {.mode = core::ExecutionMode::Sequential});
  EXPECT_EQ(engine.original_graph().num_vertices(), g.num_vertices());
  EXPECT_EQ(engine.original_graph().num_edges(), g.num_edges());
  EXPECT_EQ(engine.num_components(), engine.bcc().num_components);
  std::uint64_t sssp = 0;
  for (std::uint32_t c = 0; c < engine.num_components(); ++c) {
    const auto& view = engine.component(c);
    const auto& red = engine.reduced(c);
    EXPECT_EQ(red.graph().num_vertices() + red.num_removed(),
              view.graph.num_vertices());
    EXPECT_EQ(engine.reduced_table(c).size(), red.graph().num_vertices());
    sssp += red.graph().num_vertices();
    // Round-trip the vertex maps.
    for (VertexId r = 0; r < red.graph().num_vertices(); ++r) {
      EXPECT_EQ(red.to_reduced(red.to_original(r)), r);
    }
  }
  EXPECT_EQ(engine.sssp_runs(), sssp);
  // AP distances are symmetric and zero on the diagonal.
  const auto& cuts = engine.block_cut_tree().cut_vertices();
  for (const VertexId a : cuts) {
    EXPECT_DOUBLE_EQ(engine.ap_distance(a, a), 0.0);
    for (const VertexId b : cuts) {
      EXPECT_DOUBLE_EQ(engine.ap_distance(a, b), engine.ap_distance(b, a));
    }
  }
}

TEST(ApiEarApsp, BlockTablesMatchEngineFormulas) {
  Graph g = gen::subdivide(gen::random_biconnected(12, 20, 3), 18, 4);
  const core::EarApsp apsp(g, {.mode = core::ExecutionMode::Sequential});
  const auto& engine = apsp.engine();
  for (std::uint32_t c = 0; c < engine.num_components(); ++c) {
    const auto& table = apsp.block_table(c);
    const VertexId n = engine.component(c).graph.num_vertices();
    ASSERT_EQ(table.size(), n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v) {
        EXPECT_DOUBLE_EQ(table.at(u, v), engine.block_distance(c, u, v));
      }
    }
  }
  EXPECT_GE(apsp.timings().postprocess, 0.0);
  EXPECT_GE(apsp.timings().total(), apsp.timings().postprocess);
}

TEST(ApiOptions, DefaultsAreSane) {
  const core::ApspOptions a;
  EXPECT_EQ(a.mode, core::ExecutionMode::Heterogeneous);
  EXPECT_TRUE(a.use_ear_reduction);
  EXPECT_GT(a.sources_per_unit, 0u);
  const mcb::McbOptions m;
  EXPECT_TRUE(m.use_ear_decomposition);
  EXPECT_EQ(m.fvs, mcb::FvsAlgorithm::GreedyPeel);
  EXPECT_GT(m.batch_size, 0u);
  const hetero::DeviceConfig d;
  EXPECT_GT(d.workers, 0u);
  EXPECT_GT(d.warp_size, 0u);
  EXPECT_GT(d.relative_throughput, 0.0);
  EXPECT_FALSE(d.name.empty());
}

TEST(ApiStats, McbStatsTotalsAndAccumulate) {
  mcb::McbStats a;
  a.labels_seconds = 1.0;
  a.search_seconds = 0.5;
  a.update_seconds = 0.25;
  a.reduce_seconds = 0.125;
  a.preprocess_seconds = 0.0625;
  a.dimension = 3;
  mcb::McbStats b = a;
  b.accumulate(a);
  EXPECT_DOUBLE_EQ(b.total_seconds(), 2 * a.total_seconds());
  EXPECT_EQ(b.dimension, 6u);
}

TEST(ApiStats, GraphStatsStringMentionsAnomalies) {
  Builder b(3);
  b.add_edge(0, 0, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(1, 2, 2.0);
  const auto s = graph::compute_stats(std::move(b).build());
  const std::string str = graph::to_string(s);
  EXPECT_NE(str.find("loops="), std::string::npos);
  EXPECT_NE(str.find("multi"), std::string::npos);
}

TEST(ApiMemory, HelpersAreConsistent) {
  const Graph g = gen::block_tree({.num_blocks = 5,
                                   .largest_block = 12,
                                   .small_block_min = 3,
                                   .small_block_max = 4,
                                   .intra_degree = 3.0},
                                  7);
  const core::DistanceOracle oracle(g, {.mode = core::ExecutionMode::Sequential});
  const auto& mu = oracle.memory();
  EXPECT_EQ(mu.ours_bytes(), mu.block_tables_bytes + mu.ap_table_bytes);
  EXPECT_DOUBLE_EQ(mu.ours_mb() * 1024 * 1024,
                   static_cast<double>(mu.ours_bytes()));
  EXPECT_GT(mu.full_table_bytes, 0u);
}

TEST(ApiDatasets, McbSevenIsTable1Prefix) {
  const auto seven = graph::datasets::mcb_seven();
  const auto& all = graph::datasets::table1();
  ASSERT_EQ(seven.size(), 7u);
  for (std::size_t i = 0; i < seven.size(); ++i) {
    EXPECT_EQ(seven[i].name, all[i].name);
  }
}

TEST(ApiEarMatrix, WholeGraphMatrixOnGeneralGraph) {
  // ear_apsp_matrix is documented for Algorithm 1 but must also be exact
  // on multi-component general graphs (it routes through the oracle).
  Graph g = gen::block_tree({.num_blocks = 3,
                             .largest_block = 8,
                             .small_block_min = 3,
                             .small_block_max = 4,
                             .intra_degree = 2.8,
                             .pendants = 2},
                            13);
  const auto m = core::ear_apsp_matrix(g, {.mode = core::ExecutionMode::Sequential});
  for (VertexId s = 0; s < g.num_vertices(); s += 3) {
    const auto ref = sssp::dijkstra(g, s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      if (ref.dist[t] == graph::kInfWeight) {
        EXPECT_EQ(m.at(s, t), graph::kInfWeight);
      } else {
        EXPECT_NEAR(m.at(s, t), ref.dist[t], 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace eardec
