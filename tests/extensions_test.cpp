// Tests for the extension layer: shortest-path reconstruction, distance
// analytics, and Brandes betweenness centrality.
#include <cmath>

#include <gtest/gtest.h>

#include "core/analytics.hpp"
#include "core/path.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sssp/brandes.hpp"
#include "sssp/dijkstra.hpp"

namespace eardec::core {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::Graph;
using graph::VertexId;

// ----------------------------------------------------------- reconstruction

TEST(PathReconstruction, HandPath) {
  Builder b(4);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 3, 1.0);
  b.add_edge(0, 3, 10.0);
  const Graph g = std::move(b).build();
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  const Path p = reconstruct_path(oracle, 0, 3);
  ASSERT_TRUE(p.found());
  EXPECT_DOUBLE_EQ(p.weight, 3.0);
  EXPECT_EQ(p.vertices, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(p.edges.size(), 3u);
}

TEST(PathReconstruction, TrivialAndUnreachable) {
  Builder b(3);
  b.add_edge(0, 1, 2.0);
  const Graph g = std::move(b).build();
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  const Path same = reconstruct_path(oracle, 1, 1);
  ASSERT_TRUE(same.found());
  EXPECT_TRUE(same.edges.empty());
  EXPECT_DOUBLE_EQ(same.weight, 0.0);
  EXPECT_FALSE(reconstruct_path(oracle, 0, 2).found());
}

class PathRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathRandomTest, ReconstructedPathsAreValidAndOptimal) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::block_tree({.num_blocks = 5,
                             .largest_block = 12,
                             .small_block_min = 3,
                             .small_block_max = 5,
                             .intra_degree = 3.0,
                             .pendants = 4},
                            seed);
  g = gen::subdivide(g, 20, seed + 1);
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  for (VertexId s = 0; s < g.num_vertices(); s += 5) {
    const auto ref = sssp::dijkstra(g, s);
    for (VertexId t = 0; t < g.num_vertices(); t += 7) {
      const Path p = reconstruct_path(oracle, s, t);
      if (ref.dist[t] == graph::kInfWeight) {
        EXPECT_FALSE(p.found());
        continue;
      }
      ASSERT_TRUE(p.found());
      EXPECT_NEAR(p.weight, ref.dist[t], 1e-6);
      // Walk validity: consecutive vertices joined by the listed edges,
      // weights summing to the reported total.
      ASSERT_EQ(p.vertices.size(), p.edges.size() + 1);
      EXPECT_EQ(p.vertices.front(), s);
      EXPECT_EQ(p.vertices.back(), t);
      graph::Weight sum = 0;
      for (std::size_t k = 0; k < p.edges.size(); ++k) {
        EXPECT_EQ(g.other_endpoint(p.edges[k], p.vertices[k]),
                  p.vertices[k + 1]);
        sum += g.weight(p.edges[k]);
      }
      EXPECT_NEAR(sum, p.weight, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathRandomTest,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------- analytics

TEST(Analytics, PathGraphDiameterAndCenter) {
  const Graph g = gen::path(5, {.lo = 1, .hi = 1});
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  const DistanceAnalytics a = compute_analytics(oracle);
  EXPECT_DOUBLE_EQ(a.diameter, 4.0);
  EXPECT_DOUBLE_EQ(a.radius, 2.0);
  ASSERT_EQ(a.centers.size(), 1u);
  EXPECT_EQ(a.centers[0], 2u);
  EXPECT_DOUBLE_EQ(a.eccentricity[0], 4.0);
  EXPECT_DOUBLE_EQ(a.eccentricity[2], 2.0);
  // Closeness of the center beats the endpoints.
  EXPECT_GT(a.closeness[2], a.closeness[0]);
}

TEST(Analytics, CycleIsVertexTransitive) {
  const Graph g = gen::cycle(6, {.lo = 1, .hi = 1});
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  const DistanceAnalytics a = compute_analytics(oracle);
  EXPECT_DOUBLE_EQ(a.diameter, a.radius);
  EXPECT_EQ(a.centers.size(), 6u);
}

TEST(Analytics, MatchesDijkstraOnRandomGraph) {
  const Graph g = gen::random_connected(40, 90, 13);
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  const DistanceAnalytics a = compute_analytics(oracle);
  graph::Weight diameter = 0;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto ref = sssp::dijkstra(g, s);
    graph::Weight ecc = 0;
    for (const graph::Weight d : ref.dist) ecc = std::max(ecc, d);
    EXPECT_NEAR(a.eccentricity[s], ecc, 1e-9);
    diameter = std::max(diameter, ecc);
  }
  EXPECT_NEAR(a.diameter, diameter, 1e-9);
}

TEST(Analytics, DisconnectedGraphIgnoresCrossComponentPairs) {
  Builder b(5);
  b.add_edge(0, 1, 3.0);
  b.add_edge(2, 3, 1.0);
  b.add_edge(3, 4, 1.0);
  const Graph g = std::move(b).build();
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  const DistanceAnalytics a = compute_analytics(oracle);
  EXPECT_DOUBLE_EQ(a.eccentricity[0], 3.0);
  EXPECT_DOUBLE_EQ(a.eccentricity[3], 1.0);
  EXPECT_DOUBLE_EQ(a.diameter, 3.0);
}

}  // namespace
}  // namespace eardec::core

namespace eardec::sssp {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::Graph;
using graph::VertexId;

/// O(n^3)-ish oracle: betweenness by explicit path counting over the
/// distance matrix: sigma_st via DP on the shortest-path DAG.
std::vector<double> brute_betweenness(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<ShortestPathTree> sp;
  sp.reserve(n);
  for (VertexId s = 0; s < n; ++s) sp.push_back(dijkstra(g, s));
  // sigma[s][t]: number of shortest s-t paths, by increasing distance.
  std::vector<std::vector<double>> sigma(n, std::vector<double>(n, 0.0));
  for (VertexId s = 0; s < n; ++s) {
    std::vector<VertexId> order(n);
    for (VertexId v = 0; v < n; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      return sp[s].dist[a] < sp[s].dist[b];
    });
    sigma[s][s] = 1;
    for (const VertexId v : order) {
      if (v == s || sp[s].dist[v] == graph::kInfWeight) continue;
      for (const graph::HalfEdge& he : g.neighbors(v)) {
        if (he.to == v) continue;
        if (std::abs(sp[s].dist[he.to] + he.weight - sp[s].dist[v]) <= 1e-9) {
          sigma[s][v] += sigma[s][he.to];
        }
      }
    }
  }
  std::vector<double> bc(n, 0.0);
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      if (s >= t || sp[s].dist[t] == graph::kInfWeight) continue;
      for (VertexId v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (std::abs(sp[s].dist[v] + sp[t].dist[v] - sp[s].dist[t]) <= 1e-9) {
          bc[v] += sigma[s][v] * sigma[t][v] / sigma[s][t];
        }
      }
    }
  }
  return bc;
}

TEST(Brandes, StarCenterCarriesAllPairs) {
  Builder b(5);
  for (VertexId v = 1; v < 5; ++v) b.add_edge(0, v, 1.0);
  const auto bc = betweenness_centrality(std::move(b).build());
  EXPECT_DOUBLE_EQ(bc[0], 6.0);  // C(4,2) pairs all route through the hub
  for (VertexId v = 1; v < 5; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Brandes, PathInteriorCounts) {
  const auto bc = betweenness_centrality(gen::path(4, {.lo = 1, .hi = 1}));
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 2.0);  // pairs (0,2), (0,3)
  EXPECT_DOUBLE_EQ(bc[2], 2.0);
}

class BrandesRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BrandesRandomTest, MatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      18, static_cast<graph::EdgeId>(26 + seed % 9), seed * 3 + 1);
  const auto brute = brute_betweenness(g);
  const auto fast = betweenness_centrality(g);
  hetero::ThreadPool pool(3);
  const auto parallel = betweenness_centrality(g, &pool);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(fast[v], brute[v], 1e-6) << "vertex " << v;
    EXPECT_NEAR(parallel[v], brute[v], 1e-6) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrandesRandomTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Brandes, EmptyAndSelfLoopGraphs) {
  EXPECT_TRUE(betweenness_centrality(Graph{}).empty());
  Builder b(2);
  b.add_edge(0, 0, 1.0);
  b.add_edge(0, 1, 1.0);
  const auto bc = betweenness_centrality(std::move(b).build());
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 0.0);
}

}  // namespace
}  // namespace eardec::sssp
namespace eardec::sssp {
namespace {

namespace genb = graph::generators;

TEST(BrandesSampled, ExactWhenPivotsCoverAllVertices) {
  const graph::Graph g = genb::random_connected(25, 50, 9);
  const auto exact = betweenness_centrality(g);
  const auto sampled = betweenness_centrality_sampled(g, 25, 1);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(sampled[v], exact[v], 1e-9);
  }
}

TEST(BrandesSampled, SampleConvergesTowardExact) {
  const graph::Graph g = genb::random_connected(80, 200, 21);
  const auto exact = betweenness_centrality(g);
  double total_exact = 0;
  for (const double v : exact) total_exact += v;
  // Averaging several seeds at half the sources: totals within 30%.
  double total_sampled = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto s = betweenness_centrality_sampled(g, 40, seed);
    for (const double v : s) total_sampled += v;
  }
  total_sampled /= 5.0;
  EXPECT_NEAR(total_sampled, total_exact, 0.3 * total_exact);
}

TEST(BrandesSampled, PoolVariantMatchesSerialSample) {
  const graph::Graph g = genb::random_connected(50, 110, 31);
  hetero::ThreadPool pool(3);
  const auto serial = betweenness_centrality_sampled(g, 20, 7);
  const auto parallel = betweenness_centrality_sampled(g, 20, 7, &pool);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(parallel[v], serial[v], 1e-9);
  }
}

}  // namespace
}  // namespace eardec::sssp
