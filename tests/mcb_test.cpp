// Tests for the MCB subsystem: GF(2) vectors, spanning trees, FVS, the
// cycle helpers, CycleStore, Horton / De Pina / Mehlhorn–Michail solvers,
// and the full ear-decomposition pipeline. Central invariants: every
// algorithm returns a *valid* basis (independent, right dimension) of
// *identical total weight*, with and without ear contraction, under every
// execution mode.
#include <array>
#include <map>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "mcb/cycle_store.hpp"
#include "mcb/depina.hpp"
#include "mcb/ear_mcb.hpp"
#include "mcb/fvs.hpp"
#include "mcb/horton.hpp"
#include "mcb/signed_graph.hpp"
#include "reduce/chains.hpp"

namespace eardec::mcb {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::Graph;

// ------------------------------------------------------------------- GF(2)

TEST(BitVector, SetGetXorDot) {
  BitVector a(130), b(130);
  a.set(0, true);
  a.set(64, true);
  a.set(129, true);
  b.set(64, true);
  b.set(100, true);
  EXPECT_TRUE(a.get(64));
  EXPECT_FALSE(a.get(63));
  EXPECT_TRUE(a.dot(b));  // overlap {64}: odd
  b.set(129, true);
  EXPECT_FALSE(a.dot(b));  // overlap {64,129}: even
  a.xor_assign(b);
  EXPECT_FALSE(a.get(64));
  EXPECT_TRUE(a.get(100));
  EXPECT_FALSE(a.get(129));     // cancelled by the xor
  EXPECT_EQ(a.popcount(), 2u);  // a ^ b = {0, 100}
  EXPECT_TRUE(a.any());
  EXPECT_FALSE(BitVector(10).any());
  EXPECT_THROW((void)a.dot(BitVector(5)), std::invalid_argument);
  EXPECT_THROW(a.xor_assign(BitVector(5)), std::invalid_argument);
}

TEST(BitVector, UnitAndEquality) {
  const BitVector u = BitVector::unit(70, 65);
  EXPECT_TRUE(u.get(65));
  EXPECT_EQ(u.popcount(), 1u);
  EXPECT_EQ(u, BitVector::unit(70, 65));
  EXPECT_NE(u, BitVector::unit(70, 64));
}

TEST(Gf2, RankAndIndependence) {
  std::vector<BitVector> vs;
  vs.push_back(BitVector::unit(4, 0));
  vs.push_back(BitVector::unit(4, 1));
  EXPECT_TRUE(gf2_independent(vs));
  BitVector sum(4);
  sum.set(0, true);
  sum.set(1, true);
  vs.push_back(sum);  // dependent: v0 ^ v1
  EXPECT_FALSE(gf2_independent(vs));
  EXPECT_EQ(gf2_rank(vs), 2u);
  EXPECT_EQ(gf2_rank({}), 0u);
}

// ---------------------------------------------------------- spanning tree

TEST(SpanningTree, DimensionAndStructure) {
  const Graph g = gen::random_connected(30, 50, 5);
  const SpanningTree t = build_spanning_tree(g);
  EXPECT_EQ(t.dimension(), 50u - 30 + 1);
  std::size_t tree_edges = 0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (t.in_tree[e]) {
      ++tree_edges;
      EXPECT_EQ(t.non_tree_index[e], kNotNonTree);
    } else {
      EXPECT_EQ(t.non_tree_edges[t.non_tree_index[e]], e);
    }
  }
  EXPECT_EQ(tree_edges, 29u);
  // Parent depths decrease toward the root.
  for (graph::VertexId v = 0; v < 30; ++v) {
    if (t.parent[v] != graph::kNullVertex) {
      EXPECT_EQ(t.depth[v], t.depth[t.parent[v]] + 1);
    }
  }
}

TEST(SpanningTree, SelfLoopsAndParallelsAreNonTree) {
  Builder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 1);
  b.add_edge(1, 2);
  const Graph g = std::move(b).build();
  const SpanningTree t = build_spanning_tree(g);
  EXPECT_EQ(t.dimension(), 2u);  // one parallel + one loop
  EXPECT_FALSE(t.in_tree[2]);    // the self-loop can never be a tree edge
}

// -------------------------------------------------------------------- FVS

class FvsRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FvsRandomTest, GreedyFvsIsValid) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      40, static_cast<graph::EdgeId>(50 + 5 * seed), seed);
  const auto fvs = feedback_vertex_set(g);
  EXPECT_TRUE(is_feedback_vertex_set(g, fvs));
  EXPECT_FALSE(is_feedback_vertex_set(g, {}));  // graphs above have cycles
}

INSTANTIATE_TEST_SUITE_P(Seeds, FvsRandomTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Fvs, TreesNeedNoFvs) {
  EXPECT_TRUE(feedback_vertex_set(gen::path(8)).empty());
  EXPECT_TRUE(is_feedback_vertex_set(gen::path(8), {}));
}

TEST(Fvs, SelfLoopEndpointForced) {
  Builder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  const auto fvs = feedback_vertex_set(g);
  ASSERT_EQ(fvs.size(), 1u);
  EXPECT_EQ(fvs[0], 0u);
  EXPECT_TRUE(is_feedback_vertex_set(g, fvs));
}

TEST(Fvs, ParallelPairNeedsAVertex) {
  Builder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  EXPECT_FALSE(is_feedback_vertex_set(g, {}));
  EXPECT_TRUE(is_feedback_vertex_set(g, feedback_vertex_set(g)));
}

// ------------------------------------------------------------------ cycles

TEST(Cycle, FundamentalCycleOfChord) {
  const Graph g = gen::cycle(5, {.lo = 1, .hi = 1});
  const SpanningTree t = build_spanning_tree(g);
  ASSERT_EQ(t.dimension(), 1u);
  const Cycle c = fundamental_cycle(g, t, t.non_tree_edges[0]);
  EXPECT_EQ(c.edges.size(), 5u);
  EXPECT_DOUBLE_EQ(c.weight, 5.0);
  EXPECT_TRUE(is_simple_cycle(g, c.edges));
  EXPECT_TRUE(is_cycle_space_element(g, c.edges));
  const BitVector v = restricted_vector(c, t);
  EXPECT_EQ(v.popcount(), 1u);
  EXPECT_THROW((void)fundamental_cycle(g, t, t.in_tree[0] ? 0 : 1),
               std::invalid_argument);
}

TEST(Cycle, SimplicityChecks) {
  const Graph g = gen::complete(4, {.lo = 1, .hi = 1});
  // Two edge-disjoint triangles of K4 joined: a figure-eight is an element
  // but not simple.
  // K4 edges: (0,1)=0 (0,2)=1 (0,3)=2 (1,2)=3 (1,3)=4 (2,3)=5.
  EXPECT_TRUE(is_simple_cycle(g, {0, 1, 3}));  // triangle 0-1-2
  EXPECT_FALSE(is_simple_cycle(g, {0, 1, 3, 2, 4}));  // vertex 0 degree 3+
  const std::vector<graph::EdgeId> eight{0, 3, 1, 2, 5, 1};  // repeated edge
  EXPECT_FALSE(is_simple_cycle(g, eight));
  EXPECT_FALSE(is_cycle_space_element(g, {}));
  EXPECT_FALSE(is_cycle_space_element(g, {0}));
  EXPECT_TRUE(is_cycle_space_element(g, {0, 1, 3}));
}

// -------------------------------------------------------------- CycleStore

TEST(CycleStore, ScanInOrderAndRemoval) {
  CycleStore store(200);
  EXPECT_EQ(store.live(), 200u);
  // Remove every third id, then scan: survivors in order.
  for (std::uint32_t id = 0; id < 200; id += 3) store.remove(id);
  std::vector<std::uint32_t> seen;
  auto cur = store.begin();
  std::array<std::uint32_t, 7> buf{};
  while (true) {
    const std::size_t got = store.next_batch(cur, buf);
    if (got == 0) break;
    seen.insert(seen.end(), buf.begin(), buf.begin() + got);
  }
  EXPECT_EQ(seen.size(), store.live());
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1], seen[i]);
  }
  for (const std::uint32_t id : seen) EXPECT_NE(id % 3, 0u);
}

TEST(CycleStore, CompactionKeepsOrderAndThrowsOnDoubleRemove) {
  CycleStore store(CycleStore::kNodeCapacity * 2);
  // Kill more than half of the first node to trigger compaction.
  for (std::uint32_t id = 0; id < CycleStore::kNodeCapacity / 2 + 2; ++id) {
    store.remove(id);
  }
  EXPECT_THROW(store.remove(0), std::invalid_argument);
  std::array<std::uint32_t, 256> buf{};
  auto cur = store.begin();
  const std::size_t got = store.next_batch(cur, buf);
  EXPECT_EQ(got, store.live());
  for (std::size_t i = 1; i < got; ++i) EXPECT_LT(buf[i - 1], buf[i]);
}

TEST(CycleStore, EmptyStore) {
  CycleStore store(0);
  EXPECT_EQ(store.live(), 0u);
  auto cur = store.begin();
  std::array<std::uint32_t, 4> buf{};
  EXPECT_EQ(store.next_batch(cur, buf), 0u);
}

// ------------------------------------------------------------ signed graph

TEST(SignedGraph, FindsMinOddCycleOnTheta) {
  // Theta graph: cycles of weight 3+5, 3+9, 5+9 over the three paths.
  Builder b(2);
  b.add_edge(0, 1, 3.0);
  b.add_edge(0, 1, 5.0);
  b.add_edge(0, 1, 9.0);
  const Graph g = std::move(b).build();
  const SpanningTree t = build_spanning_tree(g);
  ASSERT_EQ(t.dimension(), 2u);
  // Witness = unit on the first non-tree edge: minimum odd cycle must use
  // that edge an odd number of times.
  const auto c = min_odd_cycle(g, t, BitVector::unit(2, 0));
  ASSERT_TRUE(c.has_value());
  const BitVector v = restricted_vector(*c, t);
  EXPECT_TRUE(v.dot(BitVector::unit(2, 0)));
  // It is the lightest cycle through that chord.
  EXPECT_LE(c->weight, 3.0 + std::max(5.0, 9.0));
}

TEST(SignedGraph, NoOddCycleForZeroWitness) {
  const Graph g = gen::cycle(4);
  const SpanningTree t = build_spanning_tree(g);
  EXPECT_FALSE(min_odd_cycle(g, t, BitVector(t.dimension())).has_value());
}

// --------------------------------------------------- algorithm agreement

void expect_valid_mcb(const Graph& g, const McbResult& r) {
  EXPECT_TRUE(validate_basis(g, r));
}

class McbAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McbAgreementTest, HortonDePinaAndEarPipelinesAgree) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::block_tree({.num_blocks = 4,
                             .largest_block = 8,
                             .small_block_min = 3,
                             .small_block_max = 5,
                             .intra_degree = 3.0,
                             .pendants = 3},
                            seed);
  g = gen::subdivide(g, 12, seed + 5);

  const HortonResult horton = horton_mcb(g);
  const DePinaResult depina = depina_mcb(g);
  const McbResult with_ears = minimum_cycle_basis(
      g, {.mode = ExecutionMode::Sequential, .use_ear_decomposition = true});
  const McbResult without_ears = minimum_cycle_basis(
      g, {.mode = ExecutionMode::Sequential, .use_ear_decomposition = false});

  EXPECT_NEAR(horton.total_weight, depina.total_weight, 1e-6);
  EXPECT_NEAR(horton.total_weight, with_ears.total_weight, 1e-6);
  EXPECT_NEAR(horton.total_weight, without_ears.total_weight, 1e-6);
  EXPECT_EQ(with_ears.basis.size(), without_ears.basis.size());
  expect_valid_mcb(g, with_ears);
  expect_valid_mcb(g, without_ears);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McbAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 11));

class McbModeTest : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(McbModeTest, AllExecutionModesAgree) {
  Graph g = gen::subdivide(gen::random_biconnected(14, 26, 42), 20, 43);
  const McbOptions opts{.mode = GetParam(),
                        .cpu_threads = 3,
                        .device = {.workers = 2, .warp_size = 8},
                        .batch_size = 16};
  const McbResult r = minimum_cycle_basis(g, opts);
  const DePinaResult ref = depina_mcb(g);
  EXPECT_NEAR(r.total_weight, ref.total_weight, 1e-6);
  expect_valid_mcb(g, r);
  EXPECT_EQ(r.stats.dimension, ref.basis.size());
}

INSTANTIATE_TEST_SUITE_P(Modes, McbModeTest,
                         ::testing::Values(ExecutionMode::Sequential,
                                           ExecutionMode::Multicore,
                                           ExecutionMode::DeviceOnly,
                                           ExecutionMode::Heterogeneous),
                         [](const auto& mode_info) {
                           switch (mode_info.param) {
                             case ExecutionMode::Sequential: return "Sequential";
                             case ExecutionMode::Multicore: return "Multicore";
                             case ExecutionMode::DeviceOnly: return "DeviceOnly";
                             case ExecutionMode::Heterogeneous:
                               return "Heterogeneous";
                           }
                           return "Unknown";
                         });

// ----------------------------------------------------- structural cases

TEST(Mcb, SingleCycleGraph) {
  const Graph g = gen::cycle(8);
  const McbResult r = minimum_cycle_basis(g, {.mode = ExecutionMode::Sequential});
  ASSERT_EQ(r.basis.size(), 1u);
  EXPECT_NEAR(r.total_weight, g.total_weight(), 1e-9);
  EXPECT_EQ(r.basis[0].edges.size(), 8u);
  expect_valid_mcb(g, r);
}

TEST(Mcb, TreeHasEmptyBasis) {
  const McbResult r =
      minimum_cycle_basis(gen::path(7), {.mode = ExecutionMode::Sequential});
  EXPECT_TRUE(r.basis.empty());
  EXPECT_DOUBLE_EQ(r.total_weight, 0.0);
}

TEST(Mcb, SelfLoopIsItsOwnBasisCycle) {
  Builder b(3);
  b.add_edge(0, 0, 7.0);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 0, 1.0);
  const Graph g = std::move(b).build();
  const McbResult r =
      minimum_cycle_basis(g, {.mode = ExecutionMode::Sequential});
  ASSERT_EQ(r.basis.size(), 2u);
  EXPECT_NEAR(r.total_weight, 7.0 + 3.0, 1e-9);
  expect_valid_mcb(g, r);
}

TEST(Mcb, ParallelEdgesFormTwoCycles) {
  Builder b(2);
  b.add_edge(0, 1, 1.0);
  b.add_edge(0, 1, 2.0);
  b.add_edge(0, 1, 4.0);
  const Graph g = std::move(b).build();
  const McbResult r =
      minimum_cycle_basis(g, {.mode = ExecutionMode::Sequential});
  ASSERT_EQ(r.basis.size(), 2u);
  // MCB: {1,2} and {1,4} (the lightest edge pairs with each other edge).
  EXPECT_NEAR(r.total_weight, 3.0 + 5.0, 1e-9);
  expect_valid_mcb(g, r);
}

TEST(Mcb, LemmaThreeOne_WeightAndDimensionPreserved) {
  // The heart of the paper's Section 3: contraction changes neither the
  // dimension nor the total weight; expanded cycles contain whole chains.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph core = gen::random_biconnected(
        10, static_cast<graph::EdgeId>(16 + seed), seed);
    const Graph g = gen::subdivide(core, 25, seed + 9);
    const McbResult with_ears = minimum_cycle_basis(
        g, {.mode = ExecutionMode::Sequential, .use_ear_decomposition = true});
    const McbResult without = minimum_cycle_basis(
        g, {.mode = ExecutionMode::Sequential, .use_ear_decomposition = false});
    EXPECT_EQ(with_ears.basis.size(), g.num_edges() - g.num_vertices() + 1);
    EXPECT_EQ(with_ears.basis.size(), without.basis.size());
    EXPECT_NEAR(with_ears.total_weight, without.total_weight, 1e-6);
    expect_valid_mcb(g, with_ears);
    // Every basis cycle traverses whole chains: within a cycle, a chain's
    // edges appear either all or not at all.
    const auto cs = reduce::find_chains(g);
    for (const Cycle& c : with_ears.basis) {
      std::map<std::uint32_t, std::size_t> count;
      for (const graph::EdgeId e : c.edges) {
        if (cs.edge_chain[e] != reduce::kNoChain) ++count[cs.edge_chain[e]];
      }
      for (const auto& [chain, cnt] : count) {
        EXPECT_EQ(cnt, cs.chains[chain].edges.size()) << "chain " << chain;
      }
    }
  }
}

TEST(Mcb, StatsAreAccumulated) {
  Graph g = gen::subdivide(gen::random_biconnected(12, 22, 8), 15, 9);
  const McbResult r =
      minimum_cycle_basis(g, {.mode = ExecutionMode::Sequential});
  EXPECT_EQ(r.stats.dimension, r.basis.size());
  EXPECT_GT(r.stats.candidates, 0u);
  EXPECT_GT(r.stats.fvs_size, 0u);
  EXPECT_GE(r.stats.total_seconds(), 0.0);
  // The pruned candidate set should suffice without fallbacks on healthy
  // inputs (the fallback exists as a safety net, not a code path).
  EXPECT_EQ(r.stats.fallback_searches, 0u);
}

TEST(Mcb, WeightedVsUnitWeights) {
  // On unit weights the MCB of the Petersen graph consists of 6 five-cycles
  // (girth 5, dimension 15 - 10 + 1 = 6).
  const Graph g = gen::petersen({.lo = 1, .hi = 1});
  const McbResult r =
      minimum_cycle_basis(g, {.mode = ExecutionMode::Sequential});
  ASSERT_EQ(r.basis.size(), 6u);
  EXPECT_NEAR(r.total_weight, 30.0, 1e-9);
  for (const Cycle& c : r.basis) EXPECT_EQ(c.edges.size(), 5u);
}

}  // namespace
}  // namespace eardec::mcb
namespace eardec::mcb {
namespace {

namespace genx = graph::generators;

class McbOuterScheduleTest
    : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(McbOuterScheduleTest, ManyComponentsAllModesAgree) {
  // Many biconnected components: exercises the per-BCC work-queue path
  // (units sorted by size, CPU/device from opposite ends).
  graph::Graph g = genx::block_tree({.num_blocks = 9,
                                     .largest_block = 12,
                                     .small_block_min = 3,
                                     .small_block_max = 6,
                                     .intra_degree = 3.0,
                                     .pendants = 4},
                                    77);
  g = genx::subdivide(g, 25, 78);
  const McbOptions opts{.mode = GetParam(),
                        .cpu_threads = 3,
                        .device = {.workers = 2, .warp_size = 8}};
  const McbResult r1 = minimum_cycle_basis(g, opts);
  const McbResult r2 = minimum_cycle_basis(g, opts);  // determinism
  const DePinaResult ref = depina_mcb(g);
  EXPECT_NEAR(r1.total_weight, ref.total_weight, 1e-6);
  EXPECT_DOUBLE_EQ(r1.total_weight, r2.total_weight);
  ASSERT_EQ(r1.basis.size(), r2.basis.size());
  for (std::size_t i = 0; i < r1.basis.size(); ++i) {
    EXPECT_EQ(r1.basis[i].edges, r2.basis[i].edges) << "cycle " << i;
  }
  EXPECT_TRUE(validate_basis(g, r1));
}

INSTANTIATE_TEST_SUITE_P(Modes, McbOuterScheduleTest,
                         ::testing::Values(ExecutionMode::Sequential,
                                           ExecutionMode::Multicore,
                                           ExecutionMode::DeviceOnly,
                                           ExecutionMode::Heterogeneous),
                         [](const auto& info2) {
                           switch (info2.param) {
                             case ExecutionMode::Sequential: return "Seq";
                             case ExecutionMode::Multicore: return "Mc";
                             case ExecutionMode::DeviceOnly: return "Dev";
                             case ExecutionMode::Heterogeneous: return "Het";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace eardec::mcb
namespace eardec::mcb {
namespace {

TEST(Mcb, DeviceBlockWitnessUpdatePathAtLargeDimension) {
  // f = m - n + 1 = 71 >= 64 drives the witness update through the
  // block-per-witness device kernel (pairwise product + tree XOR reduce).
  const graph::Graph g = graph::generators::random_biconnected(40, 110, 55);
  const McbResult dev = minimum_cycle_basis(
      g, {.mode = ExecutionMode::DeviceOnly,
          .device = {.workers = 2, .warp_size = 8}});
  const McbResult seq =
      minimum_cycle_basis(g, {.mode = ExecutionMode::Sequential});
  EXPECT_EQ(dev.stats.dimension, 71u);
  EXPECT_NEAR(dev.total_weight, seq.total_weight, 1e-6);
  EXPECT_TRUE(validate_basis(g, dev));
}

}  // namespace
}  // namespace eardec::mcb
