// Tests for the live stats endpoint (src/obs/stats_server): lifecycle
// (ephemeral-port bind, restart, stop), the three routes, the Prometheus
// exposition contract (cumulative buckets, +Inf, quantile gauges), and —
// under TSan via the `hetero` label — that scraping is race-free against
// concurrent metric updates and thread-pool construction/teardown.
//
// The client side is a raw blocking POSIX socket: the point is to exercise
// the server exactly the way curl/Prometheus would, with no test-only
// shortcuts through its internals. POSIX-only, like the server itself.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hetero/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_server.hpp"

#if defined(__unix__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using namespace eardec;

#if defined(__unix__)

/// One blocking HTTP/1.1 request against 127.0.0.1:<port>; returns the full
/// response (headers + body), or "" on connection failure.
std::string http_get(std::uint16_t port, const std::string& path,
                     const char* method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string req = std::string(method) + " " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

/// Sends raw request bytes verbatim and returns the full response. With
/// `half_close`, shuts down the write side after sending — the client-hung-up
/// case the Content-Length framing check must turn into a 400 instead of
/// burning the receive timeout or truncating the payload.
std::string http_raw(std::uint16_t port, const std::string& raw,
                     bool half_close = false) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return "";
  }
  std::size_t off = 0;
  while (off < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + off, raw.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  if (half_close) ::shutdown(fd, SHUT_WR);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

class StatsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::StatsServer::kCompiledIn) {
      GTEST_SKIP() << "stats server compiled out";
    }
    auto& server = obs::StatsServer::instance();
    server.stop();
    ASSERT_TRUE(server.start(0));  // ephemeral port: hermetic under ctest -j
    port_ = server.port();
    ASSERT_NE(port_, 0u);
  }
  void TearDown() override { obs::StatsServer::instance().stop(); }

  std::uint16_t port_ = 0;
};

TEST_F(StatsServerTest, HealthzAnswersOk) {
  const std::string resp = http_get(port_, "/healthz");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("ok"), std::string::npos);
}

TEST_F(StatsServerTest, StartWhileRunningFailsAndRestartWorks) {
  auto& server = obs::StatsServer::instance();
  EXPECT_TRUE(server.running());
  EXPECT_FALSE(server.start(0));  // second start is refused
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0u);
  ASSERT_TRUE(server.start(0));  // and a clean restart binds again
  EXPECT_NE(server.port(), 0u);
  EXPECT_NE(http_get(server.port(), "/healthz").find("200"),
            std::string::npos);
}

TEST_F(StatsServerTest, MetricsExposesInstrumentsInPrometheusFormat) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("stats_test.requests").reset();
  reg.counter("stats_test.requests").add(42);
  reg.gauge("stats_test.level").set(2.5);
  obs::Histogram& h = reg.histogram("stats_test.latency_ns");
  h.reset();
  h.record(5);
  h.record(100);
  h.record(3000);

  const std::string resp = http_get(port_, "/metrics");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  // Instruments appear under mangled eardec_ names with TYPE headers.
  EXPECT_NE(resp.find("# TYPE eardec_stats_test_requests counter"),
            std::string::npos);
  EXPECT_NE(resp.find("eardec_stats_test_requests 42"), std::string::npos);
  EXPECT_NE(resp.find("eardec_stats_test_level 2.5"), std::string::npos);
  // Histogram contract: cumulative buckets ending in +Inf == count, plus
  // sum/count and the derived quantile gauges.
  EXPECT_NE(resp.find("eardec_stats_test_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(resp.find("eardec_stats_test_latency_ns_count 3"),
            std::string::npos);
  EXPECT_NE(resp.find("eardec_stats_test_latency_ns_sum 3105"),
            std::string::npos);
  EXPECT_NE(resp.find("eardec_stats_test_latency_ns_p50"), std::string::npos);
  EXPECT_NE(resp.find("eardec_stats_test_latency_ns_p99"), std::string::npos);
  // Scrape-time process gauges ride along.
  EXPECT_NE(resp.find("eardec_process_uptime_seconds"), std::string::npos);
}

TEST_F(StatsServerTest, MetricsBucketSeriesIsCumulative) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Histogram& h = reg.histogram("stats_test.cumulative");
  h.reset();
  for (std::uint64_t v : {1u, 2u, 2u, 9u}) h.record(v);
  const std::string resp = http_get(port_, "/metrics");
  // le="1" holds 1 sample, le="3" accumulates to 3, le="15" to 4.
  EXPECT_NE(resp.find("eardec_stats_test_cumulative_bucket{le=\"1\"} 1"),
            std::string::npos)
      << resp;
  EXPECT_NE(resp.find("eardec_stats_test_cumulative_bucket{le=\"3\"} 3"),
            std::string::npos);
  EXPECT_NE(resp.find("eardec_stats_test_cumulative_bucket{le=\"15\"} 4"),
            std::string::npos);
  EXPECT_NE(resp.find("eardec_stats_test_cumulative_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
}

TEST_F(StatsServerTest, StatsJsonServesTheRegistryExport) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("stats_test.json_counter").reset();
  reg.counter("stats_test.json_counter").add(7);
  const std::string resp = http_get(port_, "/stats.json");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_NE(resp.find("\"stats_test.json_counter\": 7"), std::string::npos);
  EXPECT_NE(resp.find("\"histograms\""), std::string::npos);
}

TEST_F(StatsServerTest, UnknownRouteIs404AndPostIs405) {
  EXPECT_NE(http_get(port_, "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(http_get(port_, "/metrics", "POST").find("HTTP/1.1 405"),
            std::string::npos);
}

TEST_F(StatsServerTest, HeadRequestOmitsBody) {
  const std::string resp = http_get(port_, "/healthz", "HEAD");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos);
  const std::size_t header_end = resp.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  EXPECT_EQ(resp.size(), header_end + 4);  // nothing after the headers
}

TEST_F(StatsServerTest, QueryStringIsIgnoredForRouting) {
  EXPECT_NE(http_get(port_, "/healthz?probe=1").find("HTTP/1.1 200"),
            std::string::npos);
}

TEST_F(StatsServerTest, RequestCounterAdvances) {
  auto& server = obs::StatsServer::instance();
  const std::uint64_t before = server.requests_served();
  (void)http_get(port_, "/healthz");
  (void)http_get(port_, "/nope");
  EXPECT_GE(server.requests_served(), before + 2);
}

TEST_F(StatsServerTest, DebugSlowRouteServesExemplarJson) {
  const std::string resp = http_get(port_, "/debug/slow");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_NE(resp.find("\"exemplars\""), std::string::npos);
}

// POST framing regressions: bodies are only read for the pluggable routes,
// so each test registers an echo handler first (and clears it after — the
// server outlives the test).
class StatsServerPostTest : public StatsServerTest {
 protected:
  void SetUp() override {
    StatsServerTest::SetUp();
    obs::StatsServer::instance().set_route_handler(
        [](const obs::HttpRequest& req, obs::HttpResponse& resp) {
          if (req.path != "/echo") return false;
          resp.status = 200;
          resp.body = "echo:" + req.body;
          return true;
        });
  }
  void TearDown() override {
    obs::StatsServer::instance().set_route_handler({});
    StatsServerTest::TearDown();
  }

  static std::string post(const std::string& body, std::size_t declared) {
    return "POST /echo HTTP/1.1\r\nHost: localhost\r\n"
           "Content-Length: " +
           std::to_string(declared) + "\r\nConnection: close\r\n\r\n" + body;
  }
};

TEST_F(StatsServerPostTest, ExactContentLengthReachesHandler) {
  const std::string resp = http_raw(port_, post("hello", 5));
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("echo:hello"), std::string::npos);
}

TEST_F(StatsServerPostTest, ShortBodyWithHungUpClientIs400) {
  // Declared 64 bytes, sent 2, then half-closed: the server must detect the
  // short read and answer 400 instead of handing a truncated payload to the
  // route handler.
  const std::string resp =
      http_raw(port_, post("hi", 64), /*half_close=*/true);
  EXPECT_NE(resp.find("HTTP/1.1 400"), std::string::npos) << resp;
  EXPECT_NE(resp.find("does not match Content-Length"), std::string::npos);
  EXPECT_EQ(resp.find("echo:"), std::string::npos);
}

TEST_F(StatsServerPostTest, BodyLongerThanDeclaredIs400) {
  const std::string resp = http_raw(port_, post("0123456789", 4));
  EXPECT_NE(resp.find("HTTP/1.1 400"), std::string::npos) << resp;
  EXPECT_EQ(resp.find("echo:"), std::string::npos);
}

TEST_F(StatsServerPostTest, OversizedDeclaredLengthIs413) {
  // Over the 1 MiB cap: refused from the declared length alone, before any
  // body bytes are read.
  const std::string resp =
      http_raw(port_, post("", 2u << 20), /*half_close=*/true);
  EXPECT_NE(resp.find("HTTP/1.1 413"), std::string::npos) << resp;
  EXPECT_NE(resp.find("body too large"), std::string::npos);
}

// The TSan check (ctest label: hetero): scrapes race registry updates from
// worker threads and thread pools being built and torn down mid-request.
// The concurrency contract says this is safe because scrapes only read
// leaked-singleton instruments — TSan holds us to it.
TEST_F(StatsServerTest, ConcurrentScrapeDuringUpdatesAndPoolChurn) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& hits = reg.counter("stats_test.concurrent_hits");
  obs::Gauge& level = reg.gauge("stats_test.concurrent_level");
  obs::Histogram& lat = reg.histogram("stats_test.concurrent_lat");
  hits.reset();

  std::atomic<bool> stop{false};
  std::thread updater([&] {
    std::uint64_t v = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      hits.add(1);
      level.add(0.5);
      lat.record(v);
      v = v * 29 % 9973;
    }
  });
  std::thread churner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      hetero::ThreadPool pool(2);  // live_workers gauge moves +2 / -2
      pool.parallel_for(0, 64, [&](std::size_t i) { lat.record(i); });
    }
  });

  for (int round = 0; round < 25; ++round) {
    const std::string metrics = http_get(port_, "/metrics");
    EXPECT_NE(metrics.find("eardec_stats_test_concurrent_hits"),
              std::string::npos);
    EXPECT_NE(http_get(port_, "/stats.json").find("\"histograms\""),
              std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  updater.join();
  churner.join();
  EXPECT_GT(hits.value(), 0u);
}

#endif  // defined(__unix__)

TEST(StatsServerGate, CompiledOutStartFailsCleanly) {
  if (obs::StatsServer::kCompiledIn) {
    GTEST_SKIP() << "serving implementation compiled in";
  }
  auto& server = obs::StatsServer::instance();
  EXPECT_FALSE(server.start(0));
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0u);
  server.stop();  // no-op, must not crash
}

TEST(StatsServerGate, CompileSwitchMatchesTracing) {
  EXPECT_EQ(obs::StatsServer::kCompiledIn, obs::kTracingEnabled);
}

}  // namespace
