// Metamorphic and cross-cutting property tests: relations that must hold
// between transformed inputs and outputs, regardless of the algorithm's
// internals. These catch classes of bugs unit tests with fixed expected
// values cannot.
#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "core/distance_oracle.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "mcb/ear_mcb.hpp"
#include "sssp/dijkstra.hpp"

namespace eardec {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::Weight;

Graph scale_weights(const Graph& g, Weight factor) {
  Builder b(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    b.add_edge(u, v, g.weight(e) * factor);
  }
  return std::move(b).build();
}

Graph add_edge(const Graph& g, VertexId u, VertexId v, Weight w) {
  Builder b(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [a, c] = g.endpoints(e);
    b.add_edge(a, c, g.weight(e));
  }
  b.add_edge(u, v, w);
  return std::move(b).build();
}

class MetamorphicTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetamorphicTest, ScalingWeightsScalesDistancesLinearly) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::subdivide(gen::random_biconnected(12, 20, seed), 20, seed + 9);
  const Graph scaled = scale_weights(g, 3.5);
  const core::DistanceOracle o1(g, {.mode = core::ExecutionMode::Sequential});
  const core::DistanceOracle o2(scaled,
                                {.mode = core::ExecutionMode::Sequential});
  for (VertexId s = 0; s < g.num_vertices(); s += 3) {
    for (VertexId t = 0; t < g.num_vertices(); t += 5) {
      EXPECT_NEAR(o2.distance(s, t), 3.5 * o1.distance(s, t), 1e-6);
    }
  }
}

TEST_P(MetamorphicTest, AddingAnEdgeNeverIncreasesAnyDistance) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::subdivide(gen::random_biconnected(12, 20, seed + 40), 15,
                           seed + 41);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<VertexId> pick(0, g.num_vertices() - 1);
  const VertexId u = pick(rng);
  VertexId v = pick(rng);
  if (u == v) v = (v + 1) % g.num_vertices();
  const Graph h = add_edge(g, u, v, 2.0);
  const core::DistanceOracle before(g,
                                    {.mode = core::ExecutionMode::Sequential});
  const core::DistanceOracle after(h,
                                   {.mode = core::ExecutionMode::Sequential});
  for (VertexId s = 0; s < g.num_vertices(); s += 2) {
    for (VertexId t = 0; t < g.num_vertices(); t += 3) {
      EXPECT_LE(after.distance(s, t), before.distance(s, t) + 1e-9);
    }
  }
}

TEST_P(MetamorphicTest, SubdividingPreservesOriginalPairDistances) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_biconnected(
      14, static_cast<graph::EdgeId>(22 + seed % 8), seed + 80);
  const Graph sub = gen::subdivide(g, 30, seed + 81);
  const core::DistanceOracle o1(g, {.mode = core::ExecutionMode::Sequential});
  const core::DistanceOracle o2(sub,
                                {.mode = core::ExecutionMode::Sequential});
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      EXPECT_NEAR(o1.distance(s, t), o2.distance(s, t), 1e-6);
    }
  }
}

TEST_P(MetamorphicTest, McbWeightScalesLinearlyAndDimensionIsInvariant) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::subdivide(gen::random_biconnected(10, 17, seed + 120), 12,
                           seed + 121);
  const auto r1 = mcb::minimum_cycle_basis(
      g, {.mode = core::ExecutionMode::Sequential});
  const auto r2 = mcb::minimum_cycle_basis(
      scale_weights(g, 2.25), {.mode = core::ExecutionMode::Sequential});
  EXPECT_EQ(r1.basis.size(), r2.basis.size());
  EXPECT_NEAR(r2.total_weight, 2.25 * r1.total_weight, 1e-6);
}

TEST_P(MetamorphicTest, McbNeverHeavierAfterAddingAnEdge) {
  // A new edge adds one dimension; the old basis plus any cycle through
  // the new edge remains feasible, so the minimum weight of the first
  // f cycles can only improve (compare the sorted prefixes).
  const std::uint64_t seed = GetParam();
  Graph g = gen::random_biconnected(10, 16, seed + 200);
  const auto r1 = mcb::minimum_cycle_basis(
      g, {.mode = core::ExecutionMode::Sequential});
  const Graph h = add_edge(g, 0, 5, 1.0);
  const auto r2 = mcb::minimum_cycle_basis(
      h, {.mode = core::ExecutionMode::Sequential});
  ASSERT_EQ(r2.basis.size(), r1.basis.size() + 1);
  // Sorted cycle weights: each of the first f entries must not increase.
  std::vector<Weight> w1, w2;
  for (const auto& c : r1.basis) w1.push_back(c.weight);
  for (const auto& c : r2.basis) w2.push_back(c.weight);
  std::sort(w1.begin(), w1.end());
  std::sort(w2.begin(), w2.end());
  for (std::size_t i = 0; i < w1.size(); ++i) {
    EXPECT_LE(w2[i], w1[i] + 1e-9) << "rank " << i;
  }
}

TEST_P(MetamorphicTest, ParallelRunsAreDeterministic) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::block_tree({.num_blocks = 5,
                             .largest_block = 14,
                             .small_block_min = 3,
                             .small_block_max = 5,
                             .intra_degree = 3.0,
                             .pendants = 3},
                            seed + 300);
  g = gen::subdivide(g, 20, seed + 301);
  const core::ApspOptions opts{.mode = core::ExecutionMode::Heterogeneous,
                               .cpu_threads = 3,
                               .device = {.workers = 2}};
  const core::DistanceOracle a(g, opts);
  const core::DistanceOracle b(g, opts);
  for (VertexId s = 0; s < g.num_vertices(); s += 4) {
    for (VertexId t = 0; t < g.num_vertices(); t += 3) {
      // Bitwise identical: the distances do not depend on scheduling.
      EXPECT_EQ(a.distance(s, t), b.distance(s, t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// ------------------------------------------------------------- integration

TEST(Integration, AllTable1DatasetsBuildOraclesAndValidate) {
  // End-to-end smoke across every dataset at MCB (small) scale: build the
  // oracle, spot-check distances, and validate the MCB basis.
  for (const auto& d : graph::datasets::table1()) {
    SCOPED_TRACE(d.name);
    const Graph g = d.make_small();
    const core::DistanceOracle oracle(
        g, {.mode = core::ExecutionMode::Multicore, .cpu_threads = 2});
    const auto ref = sssp::dijkstra(g, 0);
    for (VertexId t = 0; t < g.num_vertices();
         t += std::max<VertexId>(1, g.num_vertices() / 23)) {
      if (ref.dist[t] == graph::kInfWeight) {
        ASSERT_EQ(oracle.distance(0, t), graph::kInfWeight);
      } else {
        ASSERT_NEAR(oracle.distance(0, t), ref.dist[t], 1e-6) << t;
      }
    }
    const auto mcb = mcb::minimum_cycle_basis(
        g, {.mode = core::ExecutionMode::Sequential});
    EXPECT_TRUE(mcb::validate_basis(g, mcb));
  }
}

}  // namespace
}  // namespace eardec
namespace eardec {
namespace {

TEST(Integration, McbEarInvarianceAcrossAllDatasets) {
  // Lemma 3.1 at dataset scale: identical basis weight and dimension with
  // and without the ear contraction, on every Table-1 stand-in.
  for (const auto& d : graph::datasets::table1()) {
    SCOPED_TRACE(d.name);
    const graph::Graph g = d.make_small();
    const auto with_ears = mcb::minimum_cycle_basis(
        g, {.mode = core::ExecutionMode::Sequential,
            .use_ear_decomposition = true});
    const auto without = mcb::minimum_cycle_basis(
        g, {.mode = core::ExecutionMode::Sequential,
            .use_ear_decomposition = false});
    EXPECT_EQ(with_ears.basis.size(), without.basis.size());
    EXPECT_NEAR(with_ears.total_weight, without.total_weight,
                1e-6 * (1 + without.total_weight));
  }
}

}  // namespace
}  // namespace eardec
