// Property suite: metamorphic invariants (vertex relabeling, uniform
// weight scaling, edge subdivision) plus direct unit tests of the
// transforms themselves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "testing/metamorphic.hpp"
#include "testing/runner.hpp"
#include "testing/shrink.hpp"

namespace et = eardec::testing;
using eardec::graph::Graph;

namespace {

std::string failure_digest(const et::RunnerReport& report) {
  std::ostringstream out;
  for (const auto& f : report.failures) {
    out << f.family << '/' << f.check << " seed=" << f.seed << ": "
        << f.message << '\n'
        << et::format_graph(f.minimal);
  }
  return out.str();
}

void expect_invariant_holds(const char* check, std::uint64_t seed) {
  et::RunnerOptions options;
  options.seed = seed;
  options.runs = 3;
  options.checks = {check};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
  EXPECT_GE(report.families_per_check.at(check), 3u);
}

}  // namespace

TEST(PropertyMetamorphic, RelabelInvarianceAcrossFamilies) {
  expect_invariant_holds("relabel", 808);
}

TEST(PropertyMetamorphic, ScaleLinearityAcrossFamilies) {
  expect_invariant_holds("scale", 1234);
}

TEST(PropertyMetamorphic, SubdivisionInvarianceAcrossFamilies) {
  expect_invariant_holds("subdivide", 5150);
}

TEST(PropertyMetamorphic, ScaleWeightsTransform) {
  const Graph g = eardec::graph::generators::path(4);
  const Graph h = et::scale_weights(g, 3.0);
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (eardec::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(h.weight(e), 3.0 * g.weight(e));
  }
}

TEST(PropertyMetamorphic, SubdivideEdgeSplitsWeight) {
  const Graph g = eardec::graph::generators::cycle(3);
  const Graph h = et::subdivide_edge(g, 0, 0.25);
  EXPECT_EQ(h.num_vertices(), g.num_vertices() + 1);
  EXPECT_EQ(h.num_edges(), g.num_edges() + 1);
  // Total weight is preserved exactly for t = 0.25 (no rounding).
  double before = 0, after = 0;
  for (eardec::graph::EdgeId e = 0; e < g.num_edges(); ++e)
    before += g.weight(e);
  for (eardec::graph::EdgeId e = 0; e < h.num_edges(); ++e)
    after += h.weight(e);
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(PropertyMetamorphic, SubdividingSelfLoopYieldsParallelPair) {
  eardec::graph::Builder b(2);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 1, 4.0);
  const Graph g = std::move(b).build();
  const Graph h = et::subdivide_edge(g, 1, 0.5);
  EXPECT_EQ(h.num_vertices(), 3u);
  EXPECT_EQ(h.num_self_loops(), 0u);
  EXPECT_TRUE(h.has_parallel_edges());
}

TEST(PropertyMetamorphic, RelabelPreservesDegreeMultiset) {
  const Graph g = et::family("block_cut").make(11, 20);
  const Graph h = et::relabel_vertices(g, 99);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  std::vector<std::size_t> dg, dh;
  for (eardec::graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    dg.push_back(g.degree(v));
    dh.push_back(h.degree(v));
  }
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
}
