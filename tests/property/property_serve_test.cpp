// Property suite for the online serving layer: the serve_mix differential
// check replays every (s, t) pair through OracleServer's scalar path and
// both batched engines (Tables / Recompute) in seed-shuffled batch order,
// comparing against per-source Dijkstra — across every seeded graph
// family. The check rides the standard harness, so a failure is shrunk to
// a minimal counterexample and replays bit-identically from its printed
// seed (`eardec_fuzz --seed S --family F --check serve_mix --runs 1`).
#include <gtest/gtest.h>

#include <sstream>

#include "testing/runner.hpp"
#include "testing/shrink.hpp"

namespace et = eardec::testing;

namespace {

std::string failure_digest(const et::RunnerReport& report) {
  std::ostringstream out;
  for (const auto& f : report.failures) {
    out << f.family << '/' << f.check << " seed=" << f.seed << ": "
        << f.message << '\n'
        << et::format_graph(f.minimal);
  }
  return out.str();
}

}  // namespace

TEST(PropertyServe, ServedAnswersMatchDijkstraAcrossAllFamilies) {
  et::RunnerOptions options;
  options.seed = 4242;
  options.runs = 3;
  options.checks = {"serve_mix"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
  // All 13 seeded families must exercise the serving paths — including the
  // multigraph and degenerate-weight ones (the serve layer makes no
  // genericity assumptions).
  EXPECT_GE(report.families_per_check.at("serve_mix"), 13u);
}

TEST(PropertyServe, AdversarialFamiliesServeCorrectly) {
  // The families that historically broke routing: self-loop pseudo-blocks,
  // catastrophic weight ranges, multiple connected components.
  et::RunnerOptions options;
  options.seed = 31337;
  options.runs = 3;
  options.families = {"parallel_multi", "degenerate_weights", "disconnected"};
  options.checks = {"serve_mix"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
  EXPECT_EQ(report.family_runs.size(), 3u);
}

TEST(PropertyServe, SeedReplayIsBitDeterministic) {
  // The --seed replay contract holds for the serving check: the same
  // options yield a bit-identical report (same graphs, same batch
  // shuffles, same answers).
  et::RunnerOptions options;
  options.seed = 777;
  options.runs = 2;
  options.families = {"theta", "block_cut", "lollipop"};
  options.checks = {"serve_mix"};
  const auto r1 = et::run_properties(options);
  const auto r2 = et::run_properties(options);
  std::ostringstream a, b;
  et::write_report(a, options, r1);
  et::write_report(b, options, r2);
  EXPECT_EQ(a.str(), b.str());
}
