// Property suite: minimum-cycle-basis differential oracles (weight,
// dimension, basis validity) against Horton and De Pina, plus the
// Lemma 3.1 contraction invariance folded into the De Pina check.
#include <gtest/gtest.h>

#include <sstream>

#include "testing/families.hpp"
#include "testing/runner.hpp"
#include "testing/shrink.hpp"

namespace et = eardec::testing;

namespace {

std::string failure_digest(const et::RunnerReport& report) {
  std::ostringstream out;
  for (const auto& f : report.failures) {
    out << f.family << '/' << f.check << " seed=" << f.seed << ": "
        << f.message << '\n'
        << et::format_graph(f.minimal);
  }
  return out.str();
}

}  // namespace

TEST(PropertyMcb, HortonOracleHoldsAcrossFamilies) {
  et::RunnerOptions options;
  options.seed = 4242;
  options.runs = 3;
  options.checks = {"mcb_horton"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
  EXPECT_GE(report.families_per_check.at("mcb_horton"), 3u);
}

TEST(PropertyMcb, DePinaOracleHoldsAcrossFamilies) {
  et::RunnerOptions options;
  options.seed = 1717;
  options.runs = 3;
  options.checks = {"mcb_depina"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
  EXPECT_GE(report.families_per_check.at("mcb_depina"), 3u);
}

TEST(PropertyMcb, BitSlicedDePinaMatchesScalarReferenceOnAllFamilies) {
  // The GF(2) overhaul differential: the WitnessMatrix-based De Pina must
  // be bit-for-bit identical to the preserved scalar loop on EVERY family
  // — multigraph, self-loop, and degenerate-weight ones included (the
  // kernels are weight-agnostic, so nothing is skipped).
  et::RunnerOptions options;
  options.seed = 90210;
  options.runs = 3;
  options.checks = {"mcb_depina_scalar"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
  EXPECT_EQ(report.families_per_check.at("mcb_depina_scalar"),
            et::families().size());
}

TEST(PropertyMcb, DePinaHandlesMultigraphFamilies) {
  // Parallel edges and self-loops are cycle-space citizens (dimension one
  // each); the De Pina oracle must agree on families that produce them.
  et::RunnerOptions options;
  options.seed = 31;
  options.runs = 3;
  options.families = {"parallel_multi", "theta", "lollipop"};
  options.checks = {"mcb_depina"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
}

TEST(PropertyMcb, HortonSkipsDegenerateWeightFamilies) {
  // Horton's candidate-set completeness argument assumes generic weights;
  // the runner must honour the skip tag instead of reporting a false
  // oracle disagreement.
  et::RunnerOptions options;
  options.seed = 5;
  options.runs = 2;
  options.families = {"degenerate_weights"};
  options.checks = {"mcb_horton"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.runs_executed, 0u);
}
