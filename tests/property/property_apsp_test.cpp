// Property suite: differential APSP oracles across the seeded graph
// families. Asserts the acceptance criteria of the harness itself too:
// each oracle must be exercised by at least three distinct families, and
// the runner must be bit-deterministic for a fixed option set.
#include <gtest/gtest.h>

#include <sstream>

#include "testing/runner.hpp"
#include "testing/shrink.hpp"

namespace et = eardec::testing;

namespace {

std::string failure_digest(const et::RunnerReport& report) {
  std::ostringstream out;
  for (const auto& f : report.failures) {
    out << f.family << '/' << f.check << " seed=" << f.seed << ": "
        << f.message << '\n'
        << et::format_graph(f.minimal);
  }
  return out.str();
}

}  // namespace

TEST(PropertyApsp, DijkstraOracleHoldsAcrossFamilies) {
  et::RunnerOptions options;
  options.seed = 2026;
  options.runs = 4;
  options.checks = {"apsp_dijkstra"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
  EXPECT_GE(report.families_per_check.at("apsp_dijkstra"), 3u);
}

TEST(PropertyApsp, FloydWarshallOracleHoldsAcrossFamilies) {
  et::RunnerOptions options;
  options.seed = 90210;
  options.runs = 4;
  options.checks = {"apsp_floyd"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
  EXPECT_GE(report.families_per_check.at("apsp_floyd"), 3u);
}

TEST(PropertyApsp, MultigraphAndDegenerateFamiliesAreCovered) {
  // The families that historically broke the pipeline (self-loop
  // pseudo-blocks, catastrophic weight ranges) must stay in the schedule.
  et::RunnerOptions options;
  options.seed = 7;
  options.runs = 3;
  options.families = {"parallel_multi", "degenerate_weights", "disconnected"};
  options.checks = {"apsp_dijkstra", "apsp_floyd"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
  EXPECT_EQ(report.family_runs.size(), 3u);
}

TEST(PropertyApsp, RunZeroSeedIsTheMasterSeed) {
  // The replay contract: a failure printed with seed S reproduces via
  // `--seed S --runs 1`, which only works if run 0 uses S itself.
  EXPECT_EQ(et::derive_seed(12345, 0), 12345u);
  EXPECT_NE(et::derive_seed(12345, 1), et::derive_seed(12345, 2));
}

TEST(PropertyApsp, ReportIsBitDeterministic) {
  et::RunnerOptions options;
  options.seed = 99;
  options.runs = 2;
  options.families = {"ring", "theta", "block_cut"};
  options.checks = {"apsp_dijkstra"};
  const auto r1 = et::run_properties(options);
  const auto r2 = et::run_properties(options);
  std::ostringstream a, b;
  et::write_report(a, options, r1);
  et::write_report(b, options, r2);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(r1.runs_executed, r2.runs_executed);
}
