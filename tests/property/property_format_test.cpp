// Cross-format property suite: every seeded graph family must survive the
// EDG1 (edge-list binary), EDG2 (packed CSR, mmap'd), and Matrix Market
// text formats, and the three readers must agree with each other.
//
// Checked per family:
//   * EDG1 and EDG2 round-trips reproduce the graph bit-identically
//     (CSR layout included — the EDG2 contract is bitwise, not set-level);
//   * the EDG2 mmap reader and its stream fallback agree bitwise, with the
//     mmap side in borrowed storage and the stream side in owned storage;
//   * Matrix Market text round-trips exactly on simple graphs
//     (max_digits10 weights; multigraph families are excluded because the
//     MM reader's KeepMinWeight policy collapses parallel edges by design);
//   * the EDG2 writer is deterministic (byte-identical files across runs
//     and thread counts), so converted datasets are cacheable artifacts;
//   * random single-byte corruption anywhere in an EDG2 file is caught by
//     Deep validation (header flips already by Shallow), never accepted.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "graph/binary_io.hpp"
#include "graph/edg2.hpp"
#include "graph/io.hpp"
#include "hetero/thread_pool.hpp"
#include "testing/families.hpp"

namespace eardec::testing {
namespace {

using graph::EdgeId;
using graph::Graph;

constexpr std::uint64_t kSeed = 20260808;
constexpr std::uint32_t kSize = 40;

std::string file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void expect_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_self_loops(), b.num_self_loops());
  EXPECT_EQ(a.has_parallel_edges(), b.has_parallel_edges());
  const auto ao = a.csr_offsets(), bo = b.csr_offsets();
  ASSERT_EQ(ao.size(), bo.size());
  for (std::size_t i = 0; i < ao.size(); ++i) EXPECT_EQ(ao[i], bo[i]);
  const auto aa = a.csr_adjacency(), ba = b.csr_adjacency();
  ASSERT_EQ(aa.size(), ba.size());
  for (std::size_t i = 0; i < aa.size(); ++i) {
    EXPECT_EQ(aa[i].to, ba[i].to);
    EXPECT_EQ(aa[i].edge, ba[i].edge);
    EXPECT_EQ(aa[i].weight, ba[i].weight);
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.endpoints(e), b.endpoints(e));
    EXPECT_EQ(a.weight(e), b.weight(e));
  }
}

class FormatFamilyTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  const GraphFamily& fam() const { return families()[GetParam()]; }
};

TEST_P(FormatFamilyTest, Edg1RoundTripIsExact) {
  const Graph g = fam().make(kSeed, kSize);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  graph::io::write_binary(buf, g);
  expect_identical(g, graph::io::read_binary(buf));
}

TEST_P(FormatFamilyTest, Edg2MmapAndStreamAgreeBitwise) {
  const Graph g = fam().make(kSeed, kSize);
  const auto path = std::filesystem::temp_directory_path() /
                    ("eardec_fmt_" + fam().name + ".edg2");
  graph::io::write_edg2_file(path, g);

  const Graph mapped =
      graph::io::read_edg2_file(path, graph::io::Edg2Validate::Deep);
  expect_identical(g, mapped);
  EXPECT_TRUE(mapped.borrowed_storage());

  std::ifstream in(path, std::ios::binary);
  const Graph streamed = graph::io::read_edg2_stream(in);
  expect_identical(mapped, streamed);
  EXPECT_FALSE(streamed.borrowed_storage());
  std::filesystem::remove(path);
}

TEST_P(FormatFamilyTest, Edg2ThroughEdg1ThroughEdg2IsExact) {
  // The conversion chain the CLI exposes: any path through the two binary
  // formats must land back on the identical graph.
  const Graph g = fam().make(kSeed + 1, kSize);
  const auto p1 = std::filesystem::temp_directory_path() /
                  ("eardec_chain_" + fam().name + ".edg2");
  graph::io::write_edg2_file(p1, g);
  const Graph via_edg2 = graph::io::read_edg2_file(p1);
  std::stringstream edg1(std::ios::in | std::ios::out | std::ios::binary);
  graph::io::write_binary(edg1, via_edg2);
  const Graph via_edg1 = graph::io::read_binary(edg1);
  graph::io::write_edg2_file(p1, via_edg1);
  expect_identical(
      g, graph::io::read_edg2_file(p1, graph::io::Edg2Validate::Deep));
  std::filesystem::remove(p1);
}

TEST_P(FormatFamilyTest, MatrixMarketRoundTripExactOnSimpleGraphs) {
  if (fam().tags.multigraph) {
    GTEST_SKIP() << "MM read collapses parallel edges (KeepMinWeight)";
  }
  if (fam().tags.degenerate_weights) {
    GTEST_SKIP() << "MM read sanitizes zero weights to 1 by design";
  }
  const Graph g = fam().make(kSeed + 2, kSize);
  std::stringstream buf;
  graph::io::write_matrix_market(buf, g);
  const Graph h = graph::io::read_matrix_market(buf);
  // The MM reader may renumber edges (file order), so compare as an edge
  // multiset; weights must still be bitwise equal thanks to max_digits10.
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  std::multiset<std::tuple<graph::VertexId, graph::VertexId, double>> eg, eh;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    eg.emplace(g.endpoints(e).first, g.endpoints(e).second, g.weight(e));
    eh.emplace(h.endpoints(e).first, h.endpoints(e).second, h.weight(e));
  }
  EXPECT_EQ(eg, eh);
}

TEST_P(FormatFamilyTest, Edg2WriterIsDeterministicAcrossThreadCounts) {
  const Graph g = fam().make(kSeed + 3, kSize);
  const auto p1 = std::filesystem::temp_directory_path() /
                  ("eardec_det1_" + fam().name + ".edg2");
  const auto p2 = std::filesystem::temp_directory_path() /
                  ("eardec_det2_" + fam().name + ".edg2");
  hetero::ThreadPool pool(4);
  graph::io::write_edg2_file(p1, g, nullptr);
  graph::io::write_edg2_file(p2, g, &pool);
  EXPECT_EQ(file_bytes(p1), file_bytes(p2));
  std::filesystem::remove(p1);
  std::filesystem::remove(p2);
}

TEST_P(FormatFamilyTest, Edg2CorruptionNeverAcceptedByDeep) {
  const Graph g = fam().make(kSeed + 4, kSize);
  const auto path = std::filesystem::temp_directory_path() /
                    ("eardec_fuzz_" + fam().name + ".edg2");
  graph::io::write_edg2_file(path, g);
  const std::string good = file_bytes(path);
  std::mt19937_64 rng(kSeed ^ GetParam());
  int caught = 0;
  constexpr int kTrials = 12;
  for (int t = 0; t < kTrials; ++t) {
    std::string data = good;
    if (t % 3 == 0) {
      // Truncate somewhere strictly inside the file.
      data.resize(1 + rng() % (data.size() - 1));
    } else {
      // Single bit flip anywhere: section data is covered by the payload
      // checksum, the header page by its own checksum, and Deep requires
      // the alignment padding to be zero — every byte is accounted for.
      const std::size_t pos = rng() % data.size();
      const auto bit = static_cast<unsigned char>(1u << (rng() % 8));
      data[pos] =
          static_cast<char>(static_cast<unsigned char>(data[pos]) ^ bit);
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.close();
    try {
      (void)graph::io::read_edg2_file(path, graph::io::Edg2Validate::Deep);
    } catch (const std::runtime_error&) {
      ++caught;
    }
  }
  EXPECT_EQ(caught, kTrials) << "some corrupted file was accepted";
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FormatFamilyTest,
    ::testing::Range<std::size_t>(0, families().size()),
    [](const ::testing::TestParamInfo<std::size_t>& param) {
      std::string name = families()[param.param].name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace eardec::testing
