// Property suite: the greedy counterexample shrinker — unit tests of the
// edit primitives, end-to-end validation that a deliberately injected
// distance bug is caught by the harness and shrunk to a tiny witness
// (acceptance bound: at most 10 vertices), and shrink determinism.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "testing/families.hpp"
#include "testing/oracles.hpp"
#include "testing/runner.hpp"
#include "testing/shrink.hpp"

namespace et = eardec::testing;
using eardec::graph::Builder;
using eardec::graph::Graph;

TEST(Shrink, DeleteVertexShiftsIdsDown) {
  const Graph g = eardec::graph::generators::cycle(4);
  const auto h = et::delete_vertex(g, 1);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->num_vertices(), 3u);
  EXPECT_EQ(h->num_edges(), 2u);  // the two edges at vertex 1 are gone
  EXPECT_FALSE(et::delete_vertex(g, 99).has_value());
}

TEST(Shrink, DeleteEdgeKeepsVertices) {
  const Graph g = eardec::graph::generators::cycle(3);
  const auto h = et::delete_edge(g, 0);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->num_vertices(), 3u);
  EXPECT_EQ(h->num_edges(), 2u);
  EXPECT_FALSE(et::delete_edge(g, 99).has_value());
}

TEST(Shrink, SmoothVertexSumsWeights) {
  Builder b(3);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 2, 3.0);
  const Graph g = std::move(b).build();
  const auto h = et::smooth_vertex(g, 1);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->num_vertices(), 2u);
  ASSERT_EQ(h->num_edges(), 1u);
  EXPECT_DOUBLE_EQ(h->weight(0), 5.0);
}

TEST(Shrink, SmoothVertexWithCoincidingNeighborsMakesSelfLoop) {
  Builder b(2);
  b.add_edge(0, 1, 1.0);
  b.add_edge(0, 1, 2.0);  // vertex 1 has degree two, both edges to 0
  const Graph g = std::move(b).build();
  const auto h = et::smooth_vertex(g, 1);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->num_vertices(), 1u);
  EXPECT_EQ(h->num_self_loops(), 1u);
  EXPECT_DOUBLE_EQ(h->weight(0), 3.0);
}

TEST(Shrink, NormalizeWeightSetsOne) {
  Builder b(2);
  b.add_edge(0, 1, 7.5);
  const Graph g = std::move(b).build();
  const auto h = et::normalize_weight(g, 0);
  ASSERT_TRUE(h.has_value());
  EXPECT_DOUBLE_EQ(h->weight(0), 1.0);
  EXPECT_FALSE(et::normalize_weight(*h, 0).has_value());  // already 1
}

TEST(Shrink, GreedyShrinkReachesStructuralMinimum) {
  const Graph g = eardec::graph::generators::complete(7);
  // Failure = "has at least three vertices"; minimal witness has exactly 3.
  const auto result = et::shrink(
      g, [](const Graph& c) { return c.num_vertices() >= 3; });
  EXPECT_EQ(result.minimal.num_vertices(), 3u);
  EXPECT_EQ(result.minimal.num_edges(), 0u);  // edges are deletable too
  EXPECT_FALSE(result.attempt_budget_hit);
  EXPECT_GT(result.steps, 0u);
}

TEST(Shrink, NeverReturnsAPassingGraph) {
  const Graph g = eardec::graph::generators::complete(6);
  const auto pred = [](const Graph& c) { return c.num_edges() >= 4; };
  const auto result = et::shrink(g, pred);
  EXPECT_TRUE(pred(result.minimal));
  EXPECT_EQ(result.minimal.num_edges(), 4u);
}

TEST(Shrink, DeterministicAcrossRepeatedRuns) {
  const Graph g = et::family("parallel_multi").make(77, 18);
  const auto pred = [](const Graph& c) {
    return et::check_injected_parallel_bug(c).has_value();
  };
  ASSERT_TRUE(pred(g));  // the family reliably produces shadowed parallels
  const auto r1 = et::shrink(g, pred);
  const auto r2 = et::shrink(g, pred);
  EXPECT_EQ(et::format_graph(r1.minimal), et::format_graph(r2.minimal));
  EXPECT_EQ(r1.steps, r2.steps);
  EXPECT_EQ(r1.attempts, r2.attempts);
}

TEST(Shrink, InjectedBugIsCaughtAndShrunkToTinyWitness) {
  // Acceptance criterion: the deliberately broken first-parallel-edge
  // Dijkstra must be caught by the harness and shrink to <= 10 vertices
  // within the CI budget.
  et::RunnerOptions options;
  options.seed = 2024;
  options.runs = 4;
  options.families = {"parallel_multi"};
  options.checks = {"injected_parallel_bug"};
  const auto report = et::run_properties(options);
  ASSERT_FALSE(report.ok()) << "injected bug was not detected";
  for (const auto& f : report.failures) {
    EXPECT_LE(f.minimal.num_vertices(), 10u)
        << "witness not minimal:\n" << et::format_graph(f.minimal);
    EXPECT_FALSE(f.minimal_message.empty());
    // The minimal witness must still fail the check it was shrunk for.
    EXPECT_TRUE(et::check_injected_parallel_bug(f.minimal).has_value());
  }
}

TEST(Shrink, FormatGraphRoundTripPrecision) {
  Builder b(2);
  b.add_edge(0, 1, 1.0000000000000002);
  const Graph g = std::move(b).build();
  const std::string text = et::format_graph(g);
  EXPECT_NE(text.find("1.0000000000000002"), std::string::npos) << text;
}
