// Property suite: fault injection. Drives the heterogeneous scheduler
// through adversarial configurations — batch sizes of one, single-thread
// pools, tiny device warps, forced CPU-only and device-only splits — and
// checks results against reference algorithms plus bitwise same-config
// determinism. Labelled `hetero` as well as `property` so the
// ThreadSanitizer CI preset races these paths.
#include <gtest/gtest.h>

#include <sstream>

#include "testing/runner.hpp"
#include "testing/shrink.hpp"

namespace et = eardec::testing;

namespace {

std::string failure_digest(const et::RunnerReport& report) {
  std::ostringstream out;
  for (const auto& f : report.failures) {
    out << f.family << '/' << f.check << " seed=" << f.seed << ": "
        << f.message << '\n'
        << et::format_graph(f.minimal);
  }
  return out.str();
}

}  // namespace

TEST(PropertyFault, AdversarialSchedulerApsp) {
  et::RunnerOptions options;
  options.seed = 611;
  options.runs = 2;
  options.size = 12;
  options.families = {"chain_heavy", "block_cut", "parallel_multi", "ring"};
  options.checks = {"sched_apsp"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
  EXPECT_GE(report.families_per_check.at("sched_apsp"), 3u);
}

TEST(PropertyFault, AdversarialSchedulerMcb) {
  et::RunnerOptions options;
  options.seed = 612;
  options.runs = 2;
  options.size = 10;
  options.families = {"chain_heavy", "theta", "sparse_connected"};
  options.checks = {"sched_mcb"};
  const auto report = et::run_properties(options);
  EXPECT_TRUE(report.ok()) << failure_digest(report);
  EXPECT_GE(report.families_per_check.at("sched_mcb"), 3u);
}

TEST(PropertyFault, FaultChecksJoinDefaultsOnlyWhenRequested) {
  // Without --fault-injection the Fault-kind checks stay out of the
  // default schedule; with it they join.
  et::RunnerOptions off;
  off.seed = 3;
  off.runs = 1;
  off.size = 8;
  off.families = {"ring"};
  const auto r_off = et::run_properties(off);
  EXPECT_EQ(r_off.check_runs.count("sched_apsp"), 0u);

  et::RunnerOptions on = off;
  on.fault_injection = true;
  const auto r_on = et::run_properties(on);
  EXPECT_EQ(r_on.check_runs.count("sched_apsp"), 1u);
  EXPECT_EQ(r_on.check_runs.count("sched_mcb"), 1u);
  EXPECT_TRUE(r_on.ok()) << failure_digest(r_on);
}
