// Tests for the EDG2 packed binary format and the parallel CSR builder:
// zero-copy round-trips, borrowed-vs-owned storage identity, mmap-vs-stream
// equality, the two validation tiers against corrupted files, and the
// writer's byte-level determinism.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/edg2.hpp"
#include "graph/generators.hpp"
#include "hetero/thread_pool.hpp"

namespace eardec::graph {
namespace {

namespace gen = generators;

std::filesystem::path temp_edg2(const std::string& tag) {
  return std::filesystem::temp_directory_path() / ("eardec_" + tag + ".edg2");
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Full structural equality, including the CSR adjacency layout (the EDG2
/// contract is bitwise identity with the serial constructor, not just
/// edge-set equality).
void expect_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_self_loops(), b.num_self_loops());
  EXPECT_EQ(a.has_parallel_edges(), b.has_parallel_edges());
  const auto ao = a.csr_offsets(), bo = b.csr_offsets();
  ASSERT_EQ(ao.size(), bo.size());
  for (std::size_t i = 0; i < ao.size(); ++i) EXPECT_EQ(ao[i], bo[i]);
  const auto aa = a.csr_adjacency(), ba = b.csr_adjacency();
  ASSERT_EQ(aa.size(), ba.size());
  for (std::size_t i = 0; i < aa.size(); ++i) {
    EXPECT_EQ(aa[i].to, ba[i].to);
    EXPECT_EQ(aa[i].edge, ba[i].edge);
    EXPECT_EQ(aa[i].weight, ba[i].weight);  // bitwise-equal doubles expected
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.endpoints(e), b.endpoints(e));
    EXPECT_EQ(a.weight(e), b.weight(e));
  }
}

TEST(Edg2, RoundTripIsBitIdenticalAndBorrowed) {
  const Graph g = gen::subdivide(gen::random_biconnected(40, 90, 7), 50, 3);
  const auto path = temp_edg2("roundtrip");
  io::write_edg2_file(path, g);
  const Graph h = io::read_edg2_file(path, io::Edg2Validate::Deep);
  EXPECT_FALSE(g.borrowed_storage());
  EXPECT_TRUE(h.borrowed_storage());
  expect_identical(g, h);
  std::filesystem::remove(path);
}

TEST(Edg2, SelfLoopsAndParallelsSurvive) {
  Builder b(4);
  b.add_edge(0, 0, 2.5);
  b.add_edge(1, 2, 1.0);
  b.add_edge(1, 2, 3.0);
  b.add_edge(2, 3, 0.5);
  const Graph g = std::move(b).build();
  const auto path = temp_edg2("multi");
  io::write_edg2_file(path, g);
  const Graph h = io::read_edg2_file(path, io::Edg2Validate::Deep);
  EXPECT_EQ(h.num_self_loops(), 1u);
  EXPECT_TRUE(h.has_parallel_edges());
  expect_identical(g, h);
  std::filesystem::remove(path);
}

TEST(Edg2, EmptyAndEdgelessGraphsRoundTrip) {
  for (const VertexId n : {VertexId{0}, VertexId{5}}) {
    const Graph g(n, {}, {});
    const auto path = temp_edg2("empty");
    io::write_edg2_file(path, g);
    const Graph h = io::read_edg2_file(path, io::Edg2Validate::Deep);
    expect_identical(g, h);
    std::filesystem::remove(path);
  }
}

TEST(Edg2, StreamReaderMatchesMmapBitwise) {
  const Graph g = gen::random_connected(60, 140, 3);
  const auto path = temp_edg2("stream");
  io::write_edg2_file(path, g);
  const Graph mapped = io::read_edg2_file(path, io::Edg2Validate::Deep);
  std::ifstream in(path, std::ios::binary);
  const Graph streamed = io::read_edg2_stream(in);
  EXPECT_TRUE(mapped.borrowed_storage());
  EXPECT_FALSE(streamed.borrowed_storage());
  expect_identical(mapped, streamed);
  std::filesystem::remove(path);
}

TEST(Edg2, CopiesShareBorrowedStorageAfterFileRemoval) {
  // The mapping must outlive the file (POSIX keeps mapped pages alive after
  // unlink) and be shared by O(1) Graph copies.
  const Graph g = gen::petersen();
  const auto path = temp_edg2("lifetime");
  io::write_edg2_file(path, g);
  Graph h = io::read_edg2_file(path);
  std::filesystem::remove(path);
  const Graph copy = h;  // NOLINT(performance-unnecessary-copy-initialization)
  h = Graph();           // drop the original; copy must keep the mapping
  expect_identical(g, copy);
}

TEST(Edg2, WriterIsDeterministic) {
  const Graph g = gen::random_connected(50, 120, 9);
  const auto p1 = temp_edg2("det1");
  const auto p2 = temp_edg2("det2");
  hetero::ThreadPool pool(3);
  io::write_edg2_file(p1, g, nullptr);  // serial checksum
  io::write_edg2_file(p2, g, &pool);    // pooled checksum, 4 MiB chunks
  EXPECT_EQ(slurp(p1), slurp(p2));
  std::filesystem::remove(p1);
  std::filesystem::remove(p2);
}

TEST(Edg2, InspectReportsHeaderFields) {
  Builder b(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(0, 1, 2.0);
  b.add_edge(2, 2, 3.0);
  const Graph g = std::move(b).build();
  const auto path = temp_edg2("inspect");
  io::write_edg2_file(path, g, nullptr, "inspect-test");
  const io::Edg2Info info = io::inspect_edg2_file(path);
  EXPECT_EQ(info.version, io::kEdg2Version);
  EXPECT_EQ(info.num_vertices, 3u);
  EXPECT_EQ(info.num_edges, 3u);
  EXPECT_EQ(info.num_self_loops, 1u);
  EXPECT_TRUE(info.has_parallel_edges);
  EXPECT_EQ(info.provenance, "inspect-test");
  EXPECT_EQ(info.file_bytes, std::filesystem::file_size(path));
  EXPECT_GT(info.payload_bytes, 0u);
  std::filesystem::remove(path);
}

// ----------------------------------------------------------------- corruption

TEST(Edg2, RejectsBadMagicAndTruncatedHeader) {
  const auto path = temp_edg2("corrupt");
  spit(path, "NOPE");
  EXPECT_THROW((void)io::read_edg2_file(path), std::runtime_error);
  EXPECT_THROW((void)io::inspect_edg2_file(path), std::runtime_error);

  io::write_edg2_file(path, gen::cycle(6));
  std::string data = slurp(path);
  spit(path, data.substr(0, 100));  // mid-header truncation
  EXPECT_THROW((void)io::read_edg2_file(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Edg2, RejectsHeaderBitFlipsEvenShallow) {
  // Any flip inside the header page breaks the header checksum, which the
  // Shallow tier already verifies.
  const auto path = temp_edg2("hdrflip");
  io::write_edg2_file(path, gen::random_connected(20, 40, 1));
  const std::string good = slurp(path);
  std::mt19937_64 rng(2026);
  for (int trial = 0; trial < 16; ++trial) {
    std::string data = good;
    const std::size_t pos = rng() % 160;  // the populated header prefix
    const auto bit = static_cast<unsigned char>(1u << (rng() % 8));
    data[pos] = static_cast<char>(static_cast<unsigned char>(data[pos]) ^ bit);
    spit(path, data);
    EXPECT_THROW((void)io::read_edg2_file(path), std::runtime_error)
        << "header flip at byte " << pos << " not caught";
  }
  std::filesystem::remove(path);
}

TEST(Edg2, DeepCatchesPayloadBitFlipsShallowDoesNot) {
  const auto path = temp_edg2("payflip");
  io::write_edg2_file(path, gen::random_connected(30, 70, 5));
  const std::string good = slurp(path);
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    std::string data = good;
    // Flip inside the adjacency section (the offsets section fits in one
    // page for this graph, so adjacency starts on the second payload page).
    // Shallow has nothing to check there; the Deep checksum covers it.
    const std::size_t pos = 2 * io::kEdg2Align + rng() % (70u * 2u * 16u);
    data[pos] = static_cast<char>(static_cast<unsigned char>(data[pos]) ^ 1);
    spit(path, data);
    // Shallow trusts the payload by design...
    EXPECT_NO_THROW((void)io::read_edg2_file(path));
    // ...Deep verifies the chunked checksum and must reject.
    EXPECT_THROW((void)io::read_edg2_file(path, io::Edg2Validate::Deep),
                 std::runtime_error)
        << "payload flip at byte " << pos << " not caught by Deep";
  }
  std::filesystem::remove(path);
}

TEST(Edg2, RejectsTruncatedSections) {
  const auto path = temp_edg2("trunc");
  io::write_edg2_file(path, gen::random_connected(25, 50, 8));
  const std::string good = slurp(path);
  // Cutting into section data puts a section past EOF, which the Shallow
  // geometry check catches without touching the payload.
  for (const double frac : {0.30, 0.60}) {
    spit(path, good.substr(0, static_cast<std::size_t>(
                                  static_cast<double>(good.size()) * frac)));
    EXPECT_THROW((void)io::read_edg2_file(path), std::runtime_error);
  }
  // Cutting only the final page's zero padding keeps every section in
  // bounds — Shallow accepts that by design, Deep does not (a valid file
  // ends exactly at the last section's page boundary).
  spit(path, good.substr(0, good.size() - 7));
  EXPECT_NO_THROW((void)io::read_edg2_file(path));
  EXPECT_THROW((void)io::read_edg2_file(path, io::Edg2Validate::Deep),
               std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Edg2, StreamReaderRejectsCorruption) {
  const Graph g = gen::random_connected(20, 45, 2);
  const auto path = temp_edg2("streamcorrupt");
  io::write_edg2_file(path, g);
  std::string data = slurp(path);
  std::filesystem::remove(path);

  std::istringstream short_hdr(data.substr(0, 64));
  EXPECT_THROW((void)io::read_edg2_stream(short_hdr), std::runtime_error);

  // Cut a full page plus change so the truncation reaches section data
  // (the tail of the file is zero padding the stream reader never visits).
  std::istringstream short_payload(
      data.substr(0, data.size() - io::kEdg2Align - 9));
  EXPECT_THROW((void)io::read_edg2_stream(short_payload), std::runtime_error);

  // Payload flip -> checksum mismatch.
  data[io::kEdg2Align + 8] = static_cast<char>(
      static_cast<unsigned char>(data[io::kEdg2Align + 8]) ^ 0x40);
  std::istringstream flipped(data);
  EXPECT_THROW((void)io::read_edg2_stream(flipped), std::runtime_error);
}

// ------------------------------------------------------------ parallel build

TEST(Edg2, ParallelCsrBuildMatchesSerialConstructor) {
  std::mt19937_64 rng(77);
  hetero::ThreadPool pool(3);
  for (int trial = 0; trial < 6; ++trial) {
    const VertexId n = 50 + static_cast<VertexId>(rng() % 200);
    const std::size_t m = n * 2;
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<Weight> weights;
    for (std::size_t e = 0; e < m; ++e) {
      // Unnormalized endpoints, self-loops, and duplicates on purpose.
      edges.emplace_back(static_cast<VertexId>(rng() % n),
                         static_cast<VertexId>(rng() % n));
      weights.push_back(static_cast<double>(rng() % 1000) / 10.0);
    }
    const Graph serial(n, edges, weights);
    const Graph parallel = io::build_csr_parallel(
        n, std::move(edges), std::move(weights), &pool);
    expect_identical(serial, parallel);
  }
}

TEST(Edg2, ParallelCsrBuildRejectsBadInput) {
  hetero::ThreadPool pool(2);
  EXPECT_THROW((void)io::build_csr_parallel(3, {{0, 5}}, {1.0}, &pool),
               std::invalid_argument);
  EXPECT_THROW((void)io::build_csr_parallel(3, {{0, 1}}, {1.0, 2.0}, &pool),
               std::invalid_argument);
}

}  // namespace
}  // namespace eardec::graph
