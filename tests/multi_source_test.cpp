// Scheduler-path tests for the batched phase-II kernels (labelled hetero:
// CI re-runs this suite under ThreadSanitizer). The k-lane multi-source
// kernel and the delta-stepping device path must produce the same matrix
// as the Sequential/Dijkstra pipeline when driven through the work queue.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "core/ear_apsp.hpp"
#include "graph/generators.hpp"
#include "hetero/thread_pool.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"

namespace eardec::core {
namespace {

namespace gen = graph::generators;
using graph::Graph;
using graph::VertexId;

Graph blocky_graph(std::uint64_t seed) {
  // Biconnected blocks of very different sizes glued in a tree: the work
  // queue sees both wide units (batched kernel) and tiny components
  // (Dijkstra fallback under Auto).
  gen::BlockTreeParams params;
  params.num_blocks = 6;
  params.largest_block = 48;
  params.small_block_min = 3;
  params.small_block_max = 10;
  params.pendants = 4;
  return gen::block_tree(params, seed);
}

sssp::DistanceMatrix matrix_for(const Graph& g, ExecutionMode mode,
                                CpuSsspKernel cpu, DeviceSsspKernel device,
                                std::uint32_t sources_per_unit) {
  ApspOptions opts;
  opts.mode = mode;
  opts.cpu_threads = 3;
  opts.device = {.workers = 2, .warp_size = 4};
  opts.cpu_kernel = cpu;
  opts.device_kernel = device;
  opts.sources_per_unit = sources_per_unit;
  return ear_apsp_matrix(g, opts);
}

class MultiSourceSchedulerTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiSourceSchedulerTest, ForcedMultiSourceMatchesSequentialDijkstra) {
  const Graph g = blocky_graph(GetParam());
  const auto ref = matrix_for(g, ExecutionMode::Sequential,
                              CpuSsspKernel::Dijkstra,
                              DeviceSsspKernel::Frontier, 16);
  for (const std::uint32_t k : {1u, 4u, 16u}) {
    const auto got = matrix_for(g, ExecutionMode::Multicore,
                                CpuSsspKernel::MultiSource,
                                DeviceSsspKernel::Frontier, k);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(got.at(u, v), ref.at(u, v))
            << "k=" << k << " pair " << u << "," << v;
      }
    }
  }
}

TEST_P(MultiSourceSchedulerTest, HeterogeneousAutoMatchesSequential) {
  const Graph g = blocky_graph(GetParam() + 100);
  const auto ref = matrix_for(g, ExecutionMode::Sequential,
                              CpuSsspKernel::Dijkstra,
                              DeviceSsspKernel::Frontier, 16);
  // Paper mode with both new kernels live: CPU workers run the Auto
  // selector (batched on wide units, Dijkstra on narrow ones), the device
  // drains bulk units through delta-stepping.
  const auto got = matrix_for(g, ExecutionMode::Heterogeneous,
                              CpuSsspKernel::Auto,
                              DeviceSsspKernel::DeltaStepping, 8);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(got.at(u, v), ref.at(u, v)) << "pair " << u << "," << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSourceSchedulerTest,
                         ::testing::Range<std::uint64_t>(1, 5));

TEST(DeltaSteppingDevice, BulkLaunchBitMatchesDijkstra) {
  const Graph g = gen::random_connected(300, 900, 11);
  hetero::Device dev({.workers = 3, .warp_size = 8});
  sssp::DeltaSteppingWorkspace ws(g.num_vertices());
  std::vector<graph::Weight> got(g.num_vertices());
  for (VertexId s = 0; s < g.num_vertices(); s += 61) {
    ws.distances(g, s, got, 0, nullptr, &dev);
    const auto ref = sssp::dijkstra(g, s);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(got[v], ref.dist[v]) << "source " << s << " vertex " << v;
    }
  }
  EXPECT_GT(dev.kernels_launched(), 0u);
}

TEST(ParallelForSlots, SlotsAreRaceFreePartition) {
  hetero::ThreadPool pool(3);
  const std::size_t n = 10000;
  // One counter vector per slot: no synchronization inside the body, so
  // TSan proves two slots never alias.
  std::vector<std::vector<std::size_t>> per_slot(pool.max_slots());
  pool.parallel_for_slots(
      0, n,
      [&](std::size_t i, unsigned slot) {
        ASSERT_LT(slot, pool.max_slots());
        per_slot[slot].push_back(i);
      },
      8);
  std::vector<std::size_t> seen;
  for (const auto& bucket : per_slot) {
    seen.insert(seen.end(), bucket.begin(), bucket.end());
  }
  ASSERT_EQ(seen.size(), n);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(seen[i], i);
}

}  // namespace
}  // namespace eardec::core
