// Tests for the SSSP/APSP kernels: Dijkstra (tree + workspace), the
// device frontier kernel, and Floyd–Warshall (plain + blocked). The three
// families must agree exactly with one another on every graph.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/floyd_warshall.hpp"
#include "sssp/frontier_sssp.hpp"

namespace eardec::sssp {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::Graph;

TEST(Dijkstra, HandComputedPath) {
  Builder b(5);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 2, 3.0);
  b.add_edge(0, 3, 10.0);
  b.add_edge(2, 3, 1.0);
  const Graph g = std::move(b).build();  // vertex 4 isolated
  const ShortestPathTree t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(t.dist[1], 2.0);
  EXPECT_DOUBLE_EQ(t.dist[2], 5.0);
  EXPECT_DOUBLE_EQ(t.dist[3], 6.0);  // via 0-1-2-3, not the direct edge
  EXPECT_EQ(t.dist[4], graph::kInfWeight);
  EXPECT_EQ(t.parent[3], 2u);
  EXPECT_EQ(t.parent[0], graph::kNullVertex);
  EXPECT_EQ(t.parent[4], graph::kNullVertex);
}

TEST(Dijkstra, TreeIsConsistentWithDistances) {
  const Graph g = gen::random_connected(120, 360, 21);
  const ShortestPathTree t = dijkstra(g, 7);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == 7) continue;
    ASSERT_NE(t.parent[v], graph::kNullVertex);
    EXPECT_NEAR(t.dist[v],
                t.dist[t.parent[v]] + g.weight(t.parent_edge[v]), 1e-9);
    // Triangle inequality across every edge.
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    EXPECT_LE(t.dist[u], t.dist[v] + g.weight(e) + 1e-9);
    EXPECT_LE(t.dist[v], t.dist[u] + g.weight(e) + 1e-9);
  }
}

TEST(Dijkstra, WorkspaceMatchesPlainDijkstra) {
  const Graph g = gen::random_connected(80, 200, 33);
  DijkstraWorkspace ws(g.num_vertices());
  std::vector<Weight> dist(g.num_vertices());
  for (VertexId s = 0; s < g.num_vertices(); s += 7) {
    ws.distances(g, s, dist);
    const auto ref = dijkstra(g, s);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(dist[v], ref.dist[v]);
    }
  }
}

TEST(Dijkstra, SelfLoopsAndParallelEdgesIgnoredCorrectly) {
  Builder b(3);
  b.add_edge(0, 0, 1.0);   // self-loop never shortens anything
  b.add_edge(0, 1, 5.0);
  b.add_edge(0, 1, 2.0);   // lighter parallel edge wins
  b.add_edge(1, 2, 1.0);
  const Graph g = std::move(b).build();
  const auto t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.dist[1], 2.0);
  EXPECT_DOUBLE_EQ(t.dist[2], 3.0);
}

TEST(Dijkstra, ZeroWeightEdges) {
  Builder b(3);
  b.add_edge(0, 1, 0.0);
  b.add_edge(1, 2, 0.0);
  const Graph g = std::move(b).build();
  const auto t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.dist[2], 0.0);
}

TEST(Dijkstra, BadSourceThrows) {
  EXPECT_THROW(dijkstra(gen::cycle(3), 3), std::out_of_range);
}

// --------------------------------------------------------------- frontier

class KernelAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelAgreementTest, FrontierMatchesDijkstra) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      60, static_cast<graph::EdgeId>(100 + seed * 11), seed);
  hetero::Device dev({.workers = 2, .warp_size = 16});
  for (VertexId s = 0; s < g.num_vertices(); s += 13) {
    const auto ref = dijkstra(g, s);
    const auto got = frontier_sssp(g, s, dev);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(got[v], ref.dist[v]) << "source " << s << " v " << v;
    }
  }
}

TEST_P(KernelAgreementTest, FloydWarshallMatchesDijkstra) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      40, static_cast<graph::EdgeId>(70 + seed * 5), seed + 500);
  const DistanceMatrix fw = floyd_warshall(g);
  for (VertexId s = 0; s < g.num_vertices(); s += 9) {
    const auto ref = dijkstra(g, s);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_NEAR(fw.at(s, v), ref.dist[v], 1e-9);
    }
  }
}

TEST_P(KernelAgreementTest, BlockedMatchesPlainFloydWarshall) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      50, static_cast<graph::EdgeId>(90 + seed * 7), seed + 900);
  const DistanceMatrix plain = floyd_warshall(g);
  hetero::ThreadPool pool(2);
  for (const VertexId block : {1u, 7u, 16u, 64u}) {
    const DistanceMatrix blocked = blocked_floyd_warshall(g, block, &pool);
    for (VertexId i = 0; i < g.num_vertices(); ++i) {
      for (VertexId j = 0; j < g.num_vertices(); ++j) {
        ASSERT_NEAR(blocked.at(i, j), plain.at(i, j), 1e-9)
            << "block " << block;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Frontier, DisconnectedVerticesStayInfinite) {
  Builder b(4);
  b.add_edge(0, 1, 1.0);
  const Graph g = std::move(b).build();
  hetero::Device dev;
  const auto d = frontier_sssp(g, 0, dev);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_EQ(d[2], graph::kInfWeight);
  EXPECT_EQ(d[3], graph::kInfWeight);
}

TEST(Frontier, WorkspaceReusableAndCountsIterations) {
  const Graph g = gen::path(30);
  hetero::Device dev({.workers = 1});
  FrontierWorkspace ws(g.num_vertices());
  std::vector<Weight> dist(g.num_vertices());
  ws.distances(g, 0, dev, dist);
  // A path needs one frontier wave per hop (+1 to detect quiescence).
  EXPECT_GE(ws.last_iterations(), 29u);
  const auto ref = dijkstra(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(dist[v], ref.dist[v]);
  }
  ws.distances(g, 29, dev, dist);  // reuse from the other end
  EXPECT_DOUBLE_EQ(dist[0], ref.dist[29]);
}

TEST(FloydWarshall, MatrixHelpers) {
  const Graph g = gen::cycle(4);
  const DistanceMatrix a = adjacency_matrix(g);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 0.0);
  EXPECT_EQ(a.at(0, 2), graph::kInfWeight);  // not adjacent on C4
  EXPECT_EQ(a.bytes(), 16u * sizeof(Weight));
  EXPECT_EQ(a.row(1).size(), 4u);
}

TEST(FloydWarshall, EmptyGraph) {
  const DistanceMatrix d = blocked_floyd_warshall(Graph{}, 8, nullptr);
  EXPECT_EQ(d.size(), 0u);
}

}  // namespace
}  // namespace eardec::sssp
