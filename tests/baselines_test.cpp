// Tests for the partitioner and the three baselines (plain, Banerjee,
// Djidjev). Each baseline must agree exactly with Dijkstra — they are
// comparison points in Figures 2-3, so their correctness matters as much
// as the core's.
#include <set>

#include <gtest/gtest.h>

#include "baselines/banerjee_apsp.hpp"
#include "baselines/djidjev_apsp.hpp"
#include "baselines/plain_apsp.hpp"
#include "core/distance_oracle.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "partition/bfs_grow.hpp"
#include "sssp/dijkstra.hpp"

namespace eardec::baselines {
namespace {

namespace gen = graph::generators;
using core::ApspOptions;
using core::ExecutionMode;
using graph::Builder;
using graph::Graph;

// ---------------------------------------------------------------- partition

TEST(BfsGrow, EveryVertexAssignedAndPartsNonEmpty) {
  const Graph g = gen::random_planar(8, 9, 0.5, 0.1, 3);
  const auto p = partition::bfs_grow(g, 4, 7);
  ASSERT_EQ(p.num_parts, 4u);
  std::vector<std::uint32_t> sizes(p.num_parts, 0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(p.part[v], p.num_parts);
    ++sizes[p.part[v]];
  }
  for (const auto s : sizes) EXPECT_GT(s, 0u);
}

TEST(BfsGrow, BoundaryAndCutConsistent) {
  const Graph g = gen::random_planar(10, 10, 0.6, 0.15, 5);
  const auto p = partition::bfs_grow(g, 5, 11);
  graph::EdgeId cut = 0;
  std::set<graph::VertexId> boundary;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (p.part[u] != p.part[v]) {
      ++cut;
      boundary.insert(u);
      boundary.insert(v);
    }
  }
  EXPECT_EQ(p.cut_edges, cut);
  EXPECT_EQ(boundary.size(), p.boundary.size());
  for (const auto v : p.boundary) EXPECT_TRUE(boundary.contains(v));
}

TEST(BfsGrow, SinglePartHasNoBoundary) {
  const Graph g = gen::grid(6, 6);
  const auto p = partition::bfs_grow(g, 1, 1);
  EXPECT_EQ(p.num_parts, 1u);
  EXPECT_TRUE(p.boundary.empty());
  EXPECT_EQ(p.cut_edges, 0u);
}

TEST(BfsGrow, BoundaryIsSmallOnPlanarGrids) {
  // The property Djidjev depends on: boundary << n for planar inputs.
  const Graph g = gen::grid(20, 20);
  const auto p = partition::bfs_grow(g, 4, 9);
  EXPECT_LT(p.boundary.size(), g.num_vertices() / 3);
}

TEST(BfsGrow, KClampedAndValidatesArgs) {
  const Graph g = gen::cycle(4);
  const auto p = partition::bfs_grow(g, 50, 2);
  EXPECT_LE(p.num_parts, 4u);
  EXPECT_THROW(partition::bfs_grow(g, 0, 1), std::invalid_argument);
}

// ----------------------------------------------------------------- plain

TEST(PlainApsp, MatchesDijkstraAllModes) {
  const Graph g = gen::random_connected(50, 120, 17);
  for (const auto mode :
       {ExecutionMode::Sequential, ExecutionMode::Multicore,
        ExecutionMode::DeviceOnly, ExecutionMode::Heterogeneous}) {
    const auto d = plain_apsp(
        g, {.mode = mode, .cpu_threads = 2, .device = {.workers = 2}});
    for (graph::VertexId s = 0; s < g.num_vertices(); s += 11) {
      const auto ref = sssp::dijkstra(g, s);
      for (graph::VertexId t = 0; t < g.num_vertices(); ++t) {
        ASSERT_DOUBLE_EQ(d.at(s, t), ref.dist[t]);
      }
    }
  }
}

// --------------------------------------------------------------- Banerjee

class BanerjeeRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BanerjeeRandomTest, MatchesDijkstra) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::block_tree({.num_blocks = 7,
                             .largest_block = 12,
                             .small_block_min = 3,
                             .small_block_max = 6,
                             .intra_degree = 3.0,
                             .pendants = 10},
                            seed);
  g = gen::subdivide(g, 15, seed + 3);
  const BanerjeeApsp apsp(g, {.mode = ExecutionMode::Sequential});
  for (graph::VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto ref = sssp::dijkstra(g, s);
    for (graph::VertexId t = 0; t < g.num_vertices(); ++t) {
      if (ref.dist[t] == graph::kInfWeight) {
        ASSERT_EQ(apsp.distance(s, t), graph::kInfWeight) << s << "," << t;
      } else {
        ASSERT_NEAR(apsp.distance(s, t), ref.dist[t], 1e-6) << s << "," << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BanerjeeRandomTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Banerjee, DeepPendantTreesAndTreeGraph) {
  // A bare tree exercises the everything-peeled path.
  const Graph tree = gen::path(9);
  const BanerjeeApsp apsp(tree, {.mode = ExecutionMode::Sequential});
  for (graph::VertexId s = 0; s < 9; ++s) {
    const auto ref = sssp::dijkstra(tree, s);
    for (graph::VertexId t = 0; t < 9; ++t) {
      ASSERT_NEAR(apsp.distance(s, t), ref.dist[t], 1e-9);
    }
  }
  EXPECT_GT(apsp.peel().num_removed(), 0u);
}

TEST(Banerjee, RunsMoreSsspThanEarPipeline) {
  // Structural claim behind Figure 2: without chain contraction the
  // baseline runs one SSSP per (core) vertex, the ear pipeline far fewer.
  Graph g = gen::subdivide(gen::random_biconnected(20, 40, 3), 80, 4);
  const BanerjeeApsp baseline(g, {.mode = ExecutionMode::Sequential});
  const core::DistanceOracle ours(g, {.mode = ExecutionMode::Sequential});
  EXPECT_GT(baseline.sssp_runs(), ours.engine().sssp_runs() * 3);
}

// ---------------------------------------------------------------- Djidjev

class DjidjevRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DjidjevRandomTest, MatchesDijkstraOnPlanar) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_planar(7, 8, 0.5, 0.2, seed);
  const DjidjevApsp apsp(g, 4, {.mode = ExecutionMode::Sequential}, seed);
  for (graph::VertexId s = 0; s < g.num_vertices(); s += 5) {
    const auto ref = sssp::dijkstra(g, s);
    for (graph::VertexId t = 0; t < g.num_vertices(); ++t) {
      if (ref.dist[t] == graph::kInfWeight) {
        ASSERT_EQ(apsp.distance(s, t), graph::kInfWeight) << s << "," << t;
      } else {
        ASSERT_NEAR(apsp.distance(s, t), ref.dist[t], 1e-6) << s << "," << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DjidjevRandomTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Djidjev, GeneralGraphsAlsoExact) {
  // The method is only *efficient* on planar inputs but must stay correct
  // anywhere.
  const Graph g = gen::random_connected(40, 90, 23);
  const DjidjevApsp apsp(g, 5, {.mode = ExecutionMode::Multicore,
                                .cpu_threads = 2});
  for (graph::VertexId s = 0; s < g.num_vertices(); s += 7) {
    const auto ref = sssp::dijkstra(g, s);
    for (graph::VertexId t = 0; t < g.num_vertices(); ++t) {
      ASSERT_NEAR(apsp.distance(s, t), ref.dist[t], 1e-6);
    }
  }
}

TEST(Djidjev, SinglePartitionDegeneratesToPlainApsp) {
  const Graph g = gen::grid(5, 5);
  const DjidjevApsp apsp(g, 1, {.mode = ExecutionMode::Sequential});
  EXPECT_EQ(apsp.boundary_size(), 0u);
  const auto ref = sssp::dijkstra(g, 0);
  for (graph::VertexId t = 0; t < g.num_vertices(); ++t) {
    ASSERT_NEAR(apsp.distance(0, t), ref.dist[t], 1e-9);
  }
}

TEST(Djidjev, DisconnectedGraph) {
  Builder b(6);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 0, 1.0);
  b.add_edge(3, 4, 2.0);
  b.add_edge(4, 5, 2.0);
  b.add_edge(5, 3, 2.0);
  const Graph g = std::move(b).build();
  const DjidjevApsp apsp(g, 2, {.mode = ExecutionMode::Sequential});
  EXPECT_EQ(apsp.distance(0, 3), graph::kInfWeight);
  EXPECT_NEAR(apsp.distance(0, 2), 1.0, 1e-9);
  EXPECT_NEAR(apsp.distance(3, 5), 2.0, 1e-9);
}

}  // namespace
}  // namespace eardec::baselines
namespace eardec::baselines {
namespace {

TEST(Djidjev, MaterializedMatrixMatchesQueries) {
  const Graph g = gen::random_planar(6, 6, 0.5, 0.2, 31);
  const DjidjevApsp apsp(g, 3, {.mode = ExecutionMode::Sequential}, 4);
  const auto full = apsp.materialize();
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto ref = sssp::dijkstra(g, u);
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (ref.dist[v] == graph::kInfWeight) {
        ASSERT_EQ(full.at(u, v), graph::kInfWeight);
      } else {
        ASSERT_NEAR(full.at(u, v), ref.dist[v], 1e-6) << u << "," << v;
      }
    }
  }
}

}  // namespace
}  // namespace eardec::baselines
