// Unit and property tests for the graph substrate: CSR construction,
// builder policies, generators, statistics, and IO round-trips.
#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"

namespace eardec::graph {
namespace {

namespace gen = generators;

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, TriangleBasics) {
  Builder b(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  b.add_edge(2, 0, 3.0);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 6.0);
  EXPECT_FALSE(g.has_parallel_edges());
  EXPECT_EQ(g.num_self_loops(), 0u);
}

TEST(Graph, AdjacencyIsConsistentWithEdgeList) {
  const Graph g = gen::random_connected(50, 120, /*seed=*/7);
  std::multiset<std::pair<VertexId, VertexId>> from_adjacency;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const HalfEdge& he : g.neighbors(v)) {
      EXPECT_EQ(g.other_endpoint(he.edge, v), he.to);
      EXPECT_DOUBLE_EQ(g.weight(he.edge), he.weight);
      from_adjacency.emplace(std::min(v, he.to), std::max(v, he.to));
    }
  }
  // Every undirected edge appears exactly twice among the half-edges.
  std::multiset<std::pair<VertexId, VertexId>> from_edges;
  for (const auto& [u, v] : g.edge_list()) {
    from_edges.emplace(u, v);
    from_edges.emplace(u, v);
  }
  EXPECT_EQ(from_adjacency, from_edges);
}

TEST(Graph, SelfLoopCountsTwiceInDegree) {
  Builder b(2);
  b.add_edge(0, 0, 5.0);
  b.add_edge(0, 1, 1.0);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.num_self_loops(), 1u);
  EXPECT_TRUE(g.is_self_loop(0));
  EXPECT_FALSE(g.is_self_loop(1));
  EXPECT_EQ(g.other_endpoint(0, 0), 0u);
}

TEST(Graph, ParallelEdgesDetected) {
  Builder b(2);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 0, 2.0);
  const Graph g = std::move(b).build();
  EXPECT_TRUE(g.has_parallel_edges());
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(Graph(2, {{0, 2}}, {1.0}), std::invalid_argument);
}

TEST(Graph, RejectsNegativeWeight) {
  EXPECT_THROW(Graph(2, {{0, 1}}, {-1.0}), std::invalid_argument);
}

TEST(Graph, RejectsSizeMismatch) {
  EXPECT_THROW(Graph(2, {{0, 1}}, {}), std::invalid_argument);
}

TEST(Builder, KeepMinWeightCollapsesParallels) {
  Builder b(3);
  b.add_edge(0, 1, 5.0);
  b.add_edge(1, 0, 2.0);
  b.add_edge(0, 1, 7.0);
  b.add_edge(1, 2, 1.0);
  const Graph g = std::move(b).build(ParallelEdgePolicy::KeepMinWeight);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.has_parallel_edges());
  // The surviving {0,1} edge has the minimum weight of the bundle.
  bool found = false;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.endpoints(e) == std::pair<VertexId, VertexId>{0, 1}) {
      EXPECT_DOUBLE_EQ(g.weight(e), 2.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Builder, KeepMinWeightTieKeepsFirstAddedEdge) {
  // Equal-weight duplicates: the strict < comparison keeps the edge added
  // first, so the surviving graph is deterministic under reinsertion order.
  Builder b(2);
  b.add_edge(0, 1, 3.0);
  b.add_edge(1, 0, 3.0);  // same unordered pair, same weight
  b.add_edge(0, 1, 3.0);
  const Graph g = std::move(b).build(ParallelEdgePolicy::KeepMinWeight);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.weight(0), 3.0);
  EXPECT_EQ(g.endpoints(0), (std::pair<VertexId, VertexId>{0, 1}));
}

TEST(Builder, KeepMinWeightCollapsesSelfLoopBundles) {
  // Self-loops survive KeepMinWeight (IO round-trips need them; they are
  // inert for shortest paths) but a bundle of loops collapses to the
  // lightest one, like any other bundle.
  Builder b(2);
  b.add_edge(0, 0, 5.0);
  b.add_edge(0, 0, 2.0);
  b.add_edge(0, 1, 1.0);
  const Graph g = std::move(b).build(ParallelEdgePolicy::KeepMinWeight);
  ASSERT_EQ(g.num_edges(), 2u);
  ASSERT_EQ(g.num_self_loops(), 1u);
  EXPECT_DOUBLE_EQ(g.weight(0), 2.0);  // surviving loop is the lighter one
}

TEST(Builder, KeepPreservesDuplicateMultiplicityAndZeroWeights) {
  // The Keep policy is the MCB contract: exact duplicates (same endpoints,
  // same weight) and zero-weight edges all keep their own EdgeId.
  Builder b(2);
  const EdgeId e0 = b.add_edge(0, 1, 0.0);
  const EdgeId e1 = b.add_edge(0, 1, 0.0);
  const EdgeId e2 = b.add_edge(1, 0, 4.0);
  EXPECT_EQ(e0, 0u);
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(e2, 2u);
  const Graph g = std::move(b).build(ParallelEdgePolicy::Keep);
  ASSERT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_parallel_edges());
  EXPECT_DOUBLE_EQ(g.weight(0), 0.0);
  EXPECT_DOUBLE_EQ(g.weight(1), 0.0);
  EXPECT_DOUBLE_EQ(g.weight(2), 4.0);
}

TEST(Builder, KeepMinWeightZeroBeatsPositive) {
  Builder b(2);
  b.add_edge(0, 1, 1.0);
  b.add_edge(0, 1, 0.0);
  const Graph g = std::move(b).build(ParallelEdgePolicy::KeepMinWeight);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.weight(0), 0.0);
}

TEST(Builder, AddEdgeRejectsInvalidWeights) {
  Builder b(2);
  EXPECT_THROW(b.add_edge(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, std::numeric_limits<Weight>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, std::numeric_limits<Weight>::infinity()),
               std::invalid_argument);
  EXPECT_EQ(b.num_edges(), 0u);  // rejected edges were not recorded
  b.add_edge(0, 1, 0.0);         // zero is explicitly allowed
  EXPECT_EQ(b.num_edges(), 1u);
}

TEST(Builder, EnsureVertexGrows) {
  Builder b(0);
  b.ensure_vertex(4);
  EXPECT_EQ(b.num_vertices(), 5u);
  b.ensure_vertex(2);  // no shrink
  EXPECT_EQ(b.num_vertices(), 5u);
}

TEST(Builder, AddEdgeOutOfRangeThrows) {
  Builder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
}

// ---------------------------------------------------------------- generators

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> stack{0};
  seen[0] = true;
  VertexId count = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const HalfEdge& he : g.neighbors(v)) {
      if (!seen[he.to]) {
        seen[he.to] = true;
        ++count;
        stack.push_back(he.to);
      }
    }
  }
  return count == g.num_vertices();
}

TEST(Generators, PathHasExpectedShape) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, CycleIsTwoRegular) {
  const Graph g = gen::cycle(7);
  EXPECT_EQ(g.num_edges(), 7u);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, CompleteGraphEdgeCount) {
  const Graph g = gen::complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Generators, GridShape) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // 9 horizontal + 8 vertical
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, WheelShape) {
  const Graph g = gen::wheel(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.degree(5), 5u);  // hub
}

TEST(Generators, PetersenIsCubic) {
  const Graph g = gen::petersen();
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 15u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(Generators, RandomConnectedIsConnectedAndSimple) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = gen::random_connected(80, 200, seed);
    EXPECT_EQ(g.num_vertices(), 80u);
    EXPECT_EQ(g.num_edges(), 200u);
    EXPECT_TRUE(is_connected(g));
    EXPECT_FALSE(g.has_parallel_edges());
    EXPECT_EQ(g.num_self_loops(), 0u);
  }
}

TEST(Generators, RandomBiconnectedMinDegreeTwo) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = gen::random_biconnected(40, 70, seed);
    EXPECT_TRUE(is_connected(g));
    const GraphStats s = compute_stats(g);
    EXPECT_GE(s.min_degree, 2u);
  }
}

TEST(Generators, SubdividePreservesTotalWeightAndAddsDeg2) {
  const Graph core = gen::random_biconnected(30, 60, 3);
  const Graph g = gen::subdivide(core, 25, 4);
  EXPECT_EQ(g.num_vertices(), 55u);
  EXPECT_EQ(g.num_edges(), 85u);
  EXPECT_NEAR(g.total_weight(), core.total_weight(), 1e-9);
  const GraphStats s = compute_stats(g);
  EXPECT_GE(s.degree_two_vertices, 25u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomPlanarConnected) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = gen::random_planar(10, 12, 0.5, 0.2, seed);
    EXPECT_EQ(g.num_vertices(), 120u);
    EXPECT_TRUE(is_connected(g));
    // Planarity implies m <= 3n - 6.
    EXPECT_LE(g.num_edges(), 3u * g.num_vertices() - 6u);
  }
}

TEST(Generators, BlockTreeConnectedWithPendants) {
  const Graph g = gen::block_tree({.num_blocks = 10,
                                   .largest_block = 30,
                                   .small_block_min = 3,
                                   .small_block_max = 6,
                                   .intra_degree = 4.0,
                                   .pendants = 8},
                                  42);
  EXPECT_TRUE(is_connected(g));
  const GraphStats s = compute_stats(g);
  EXPECT_GE(s.degree_one_vertices, 8u);
}

TEST(Generators, DeterministicForSameSeed) {
  const Graph a = gen::random_connected(50, 100, 9);
  const Graph b = gen::random_connected(50, 100, 9);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.endpoints(e), b.endpoints(e));
    EXPECT_DOUBLE_EQ(a.weight(e), b.weight(e));
  }
}

TEST(Generators, InvalidArgumentsThrow) {
  EXPECT_THROW(gen::cycle(2), std::invalid_argument);
  EXPECT_THROW(gen::random_connected(5, 2, 1), std::invalid_argument);
  EXPECT_THROW(gen::random_biconnected(2, 5, 1), std::invalid_argument);
  EXPECT_THROW(gen::wheel(3), std::invalid_argument);
  EXPECT_THROW(gen::random_planar(1, 5, 0.5, 0.1, 1), std::invalid_argument);
}

// --------------------------------------------------------------------- stats

TEST(Stats, CountsDegreesOnPath) {
  const GraphStats s = compute_stats(gen::path(6));
  EXPECT_EQ(s.degree_one_vertices, 2u);
  EXPECT_EQ(s.degree_two_vertices, 4u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_FALSE(to_string(s).empty());
}

// ------------------------------------------------------------------------ io

TEST(Io, MatrixMarketRoundTrip) {
  const Graph g = gen::random_connected(25, 60, 11);
  std::stringstream buf;
  io::write_matrix_market(buf, g);
  const Graph h = io::read_matrix_market(buf);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  std::multiset<std::tuple<VertexId, VertexId, Weight>> eg, eh;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    eg.emplace(g.endpoints(e).first, g.endpoints(e).second, g.weight(e));
    eh.emplace(h.endpoints(e).first, h.endpoints(e).second, h.weight(e));
  }
  EXPECT_EQ(eg, eh);
}

TEST(Io, MatrixMarketPatternAndComments) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "3 3 3\n"
      "2 1\n"
      "3 1\n"
      "3 2\n");
  const Graph g = io::read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.weight(0), 1.0);  // pattern weights default to 1
}

TEST(Io, MatrixMarketGeneralSymmetrizesWithMinWeight) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 5.0\n"
      "2 1 3.0\n");
  const Graph g = io::read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.weight(0), 3.0);
}

TEST(Io, MatrixMarketNegativeAndZeroWeightsSanitized) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 1\n"
      "2 1 -4.0\n");
  const Graph g = io::read_matrix_market(in);
  EXPECT_DOUBLE_EQ(g.weight(0), 4.0);
}

TEST(Io, MatrixMarketDiagonalBecomesSelfLoop) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "1 1 2.0\n"
      "2 1 1.0\n");
  const Graph g = io::read_matrix_market(in);
  EXPECT_EQ(g.num_self_loops(), 1u);
}

TEST(Io, MatrixMarketRejectsBadHeader) {
  std::stringstream in("not a matrix\n");
  EXPECT_THROW(io::read_matrix_market(in), std::runtime_error);
}

TEST(Io, MatrixMarketRejectsTruncated) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 1.0\n");
  EXPECT_THROW(io::read_matrix_market(in), std::runtime_error);
}

TEST(Io, EdgeListRoundTrip) {
  const Graph g = gen::random_connected(15, 30, 13);
  std::stringstream buf;
  io::write_edge_list(buf, g);
  const Graph h = io::read_edge_list(buf);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_NEAR(h.total_weight(), g.total_weight(), 1e-9);
}

// -------------------------------------------------------------------datasets

TEST(Datasets, RegistryHasFifteenEntries) {
  const auto& ds = datasets::table1();
  ASSERT_EQ(ds.size(), 15u);
  EXPECT_EQ(ds.front().name, "nopoly");
  EXPECT_EQ(ds.back().name, "Planar_5");
  EXPECT_EQ(datasets::mcb_seven().size(), 7u);
}

TEST(Datasets, ByNameFindsAndThrows) {
  EXPECT_EQ(datasets::by_name("c-50").name, "c-50");
  EXPECT_THROW(datasets::by_name("does-not-exist"), std::out_of_range);
}

TEST(Datasets, AllGeneratorsProduceConnectedGraphs) {
  for (const auto& d : datasets::table1()) {
    SCOPED_TRACE(d.name);
    const Graph g = d.make();
    EXPECT_GT(g.num_vertices(), 0u);
    EXPECT_TRUE(is_connected(g));
    const Graph h = d.make_small();
    EXPECT_GT(h.num_vertices(), 0u);
    EXPECT_TRUE(is_connected(h));
    EXPECT_LT(h.num_vertices(), g.num_vertices());
  }
}

TEST(Datasets, Degree2FractionRoughlyMatchesPaper) {
  for (const auto& d : datasets::table1()) {
    SCOPED_TRACE(d.name);
    const Graph g = d.make();
    const GraphStats s = compute_stats(g);
    const double deg2_pct =
        100.0 * s.degree_two_vertices / static_cast<double>(s.num_vertices);
    // The generators are calibrated, not exact; allow a generous band.
    // (Some core vertices may organically have degree two as well.)
    EXPECT_GE(deg2_pct + 12.0, d.paper.removed_pct);
  }
}

}  // namespace
}  // namespace eardec::graph
namespace eardec::graph {
namespace {

TEST(Io, MatrixMarketRejectsUnsupportedVariants) {
  std::stringstream arr(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n1.0\n2.0\n3.0\n4.0\n");
  EXPECT_THROW((void)io::read_matrix_market(arr), std::runtime_error);
  std::stringstream vec(
      "%%MatrixMarket vector coordinate real general\n"
      "3 1 1\n1 1 5.0\n");
  EXPECT_THROW((void)io::read_matrix_market(vec), std::runtime_error);
  std::stringstream cplx(
      "%%MatrixMarket matrix coordinate complex symmetric\n"
      "2 2 1\n2 1 1.0 0.0\n");
  EXPECT_THROW((void)io::read_matrix_market(cplx), std::runtime_error);
  std::stringstream skew(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n2 1 1.0\n");
  EXPECT_THROW((void)io::read_matrix_market(skew), std::runtime_error);
  std::stringstream rect(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 3 1\n1 2 1.0\n");
  EXPECT_THROW((void)io::read_matrix_market(rect), std::runtime_error);
  std::stringstream oob(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 1\n3 1 1.0\n");
  EXPECT_THROW((void)io::read_matrix_market(oob), std::runtime_error);
}

TEST(Io, EdgeListRejectsGarbageLine) {
  std::stringstream in("0 1 2.0\nnot numbers\n");
  EXPECT_THROW((void)io::read_edge_list(in), std::runtime_error);
}

TEST(Io, MatrixMarketRejectsTruncatedSizeLine) {
  // Size line missing the nnz count: a clean error, not a zero-edge graph.
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3\n");
  EXPECT_THROW((void)io::read_matrix_market(in), std::runtime_error);
}

TEST(Io, MatrixMarketRejectsNonNumericWeight) {
  // real/integer files must carry a parseable value per entry; silently
  // defaulting a garbled weight to 1.0 would corrupt the graph.
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 1\n"
      "2 1 fast\n");
  EXPECT_THROW((void)io::read_matrix_market(in), std::runtime_error);
}

TEST(Io, MatrixMarketRejectsZeroCoordinate) {
  // Matrix Market is one-based; a zero index would wrap on the -1 shift.
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 1\n"
      "0 1 2.0\n");
  EXPECT_THROW((void)io::read_matrix_market(in), std::runtime_error);
}

TEST(Io, EdgeListRejectsNonNumericWeight) {
  // The third column is optional, but if present it must be numeric.
  std::stringstream in("0 1 heavy\n");
  EXPECT_THROW((void)io::read_edge_list(in), std::runtime_error);
}

TEST(Io, EdgeListCommentsAndDefaults) {
  std::stringstream in("# comment\n% other comment\n0 3\n");
  const Graph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_DOUBLE_EQ(g.weight(0), 1.0);  // default weight
}

}  // namespace
}  // namespace eardec::graph
