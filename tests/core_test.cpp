// Tests for the ear-decomposition APSP core: TreeLca, EarApspEngine,
// EarApsp (full tables), DistanceOracle (compact), the memory model, and
// exact agreement with brute-force Dijkstra APSP across graph families,
// execution modes, and seeds.
#include <gtest/gtest.h>

#include <random>

#include "connectivity/tree_lca.hpp"
#include "core/distance_oracle.hpp"
#include "core/ear_apsp.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"

namespace eardec::core {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::Graph;

#define ASSERT_NEAR_OR_BOTH_INF(got, want, s, t)                           \
  do {                                                                     \
    if ((want) == graph::kInfWeight) {                                     \
      ASSERT_EQ((got), graph::kInfWeight) << "pair " << (s) << "," << (t); \
    } else {                                                               \
      ASSERT_NEAR((got), (want), 1e-6) << "pair " << (s) << "," << (t);    \
    }                                                                      \
  } while (0)

void expect_matches_dijkstra(const Graph& g, const ApspOptions& opts,
                             bool check_full_tables = true) {
  const DistanceOracle oracle(g, opts);
  std::optional<EarApsp> full;
  if (check_full_tables) full.emplace(g, opts);
  for (graph::VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto ref = sssp::dijkstra(g, s);
    for (graph::VertexId t = 0; t < g.num_vertices(); ++t) {
      ASSERT_NEAR_OR_BOTH_INF(oracle.distance(s, t), ref.dist[t], s, t);
      if (full) {
        ASSERT_NEAR_OR_BOTH_INF(full->distance(s, t), ref.dist[t], s, t);
      }
    }
  }
}

// ------------------------------------------------------------------ TreeLca

TEST(TreeLca, PathTree) {
  // 0-1-2-3-4 as a path.
  std::vector<std::vector<std::uint32_t>> adj{{1}, {0, 2}, {1, 3}, {2, 4}, {3}};
  const connectivity::TreeLca lca(adj);
  EXPECT_EQ(lca.lca(0, 4), 0u);
  EXPECT_EQ(lca.lca(3, 4), 3u);
  EXPECT_EQ(lca.lca(2, 2), 2u);
  EXPECT_EQ(lca.next_on_path(0, 4), 1u);
  EXPECT_EQ(lca.next_on_path(4, 0), 3u);
  EXPECT_EQ(lca.depth(4), 4u);
  EXPECT_EQ(lca.ancestor_at_depth(4, 1), 1u);
}

TEST(TreeLca, BranchingTreeAndForest) {
  // Tree: root 0 with children 1, 2; vertex 1 has children 3, 4.
  // Nodes 5-6 form a second component.
  std::vector<std::vector<std::uint32_t>> adj{{1, 2}, {0, 3, 4}, {0},
                                              {1},    {1},       {6}, {5}};
  const connectivity::TreeLca lca(adj);
  EXPECT_EQ(lca.lca(3, 4), 1u);
  EXPECT_EQ(lca.lca(3, 2), 0u);
  EXPECT_EQ(lca.next_on_path(3, 2), 1u);
  EXPECT_EQ(lca.next_on_path(2, 3), 0u);
  EXPECT_EQ(lca.component(0), lca.component(4));
  EXPECT_NE(lca.component(0), lca.component(5));
  EXPECT_THROW((void)lca.lca(0, 5), std::invalid_argument);
  EXPECT_THROW((void)lca.next_on_path(2, 2), std::invalid_argument);
}

// ------------------------------------------------------- small exact cases

TEST(EarApsp, BiconnectedSubdividedCore) {
  const Graph core = gen::random_biconnected(10, 18, 3);
  const Graph g = gen::subdivide(core, 30, 4);
  expect_matches_dijkstra(g, {.mode = ExecutionMode::Sequential});
}

TEST(EarApsp, PureCycle) {
  expect_matches_dijkstra(gen::cycle(12),
                          {.mode = ExecutionMode::Sequential});
}

TEST(EarApsp, PathGraph) {
  expect_matches_dijkstra(gen::path(10), {.mode = ExecutionMode::Sequential});
}

TEST(EarApsp, SingleEdgeAndSingleVertex) {
  expect_matches_dijkstra(gen::path(2), {.mode = ExecutionMode::Sequential});
  Builder b(1);
  expect_matches_dijkstra(std::move(b).build(),
                          {.mode = ExecutionMode::Sequential});
}

TEST(EarApsp, DisconnectedGraph) {
  Builder b(7);  // triangle + path + isolated vertex
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  b.add_edge(2, 0, 3.0);
  b.add_edge(3, 4, 1.0);
  b.add_edge(4, 5, 1.0);
  const Graph g = std::move(b).build();
  expect_matches_dijkstra(g, {.mode = ExecutionMode::Sequential});
}

TEST(EarApsp, TwoBlocksSharedCutVertex) {
  Builder b(5);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  b.add_edge(2, 0, 4.0);
  b.add_edge(2, 3, 1.0);
  b.add_edge(3, 4, 2.0);
  b.add_edge(4, 2, 3.0);
  expect_matches_dijkstra(std::move(b).build(),
                          {.mode = ExecutionMode::Sequential});
}

// Three triangles glued in a path: B1={0,1,2}, B2={2,3,4}, B3={4,5,6} with
// articulation points a1=2 and a2=4. Weights are chosen so each per-block
// distance is unambiguous: d(0,2)=1.5, d(2,4)=4, d(4,5)=1.
Graph three_block_path() {
  Builder b(7);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(0, 2, 1.5);
  b.add_edge(2, 3, 2.0);
  b.add_edge(3, 4, 2.0);
  b.add_edge(2, 4, 5.0);
  b.add_edge(4, 5, 1.0);
  b.add_edge(5, 6, 1.0);
  b.add_edge(4, 6, 3.0);
  return std::move(b).build();
}

TEST(EarApsp, CrossBlockFormulaBoundaries) {
  // Cross-component routing is d(n1,a1) + A[a1][a2] + d(a2,n2); pin each
  // term, including the boundary cases where an endpoint IS one of the
  // articulation points (the corresponding term must vanish).
  const Graph g = three_block_path();
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  EXPECT_DOUBLE_EQ(oracle.distance(0, 5), 6.5);  // 1.5 + 4 + 1
  EXPECT_DOUBLE_EQ(oracle.distance(0, 6), 7.5);  // 1.5 + 4 + 2
  EXPECT_DOUBLE_EQ(oracle.distance(2, 5), 5.0);  // n1 == a1: first term 0
  EXPECT_DOUBLE_EQ(oracle.distance(1, 4), 5.0);  // n2 == a2: last term 0
  EXPECT_DOUBLE_EQ(oracle.distance(2, 4), 4.0);  // both endpoints cuts
  EXPECT_DOUBLE_EQ(oracle.distance(3, 1), 3.0);  // adjacent blocks only
  expect_matches_dijkstra(g, {.mode = ExecutionMode::Sequential});
}

TEST(EarApsp, QueryEndpointIsArticulationPoint) {
  // Every pair with an articulation endpoint, against Dijkstra, in both
  // directions — the routing code takes a distinct branch for these.
  const Graph g = three_block_path();
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  for (const graph::VertexId a : {2u, 4u}) {
    const auto ref = sssp::dijkstra(g, a);
    for (graph::VertexId t = 0; t < g.num_vertices(); ++t) {
      EXPECT_DOUBLE_EQ(oracle.distance(a, t), ref.dist[t]);
      EXPECT_DOUBLE_EQ(oracle.distance(t, a), ref.dist[t]);
    }
  }
}

TEST(EarApsp, BridgeOnlyTreeGraphs) {
  // Trees are the all-bridges extreme of the block-cut tree: every edge is
  // its own block and every internal vertex is an articulation point.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    std::mt19937_64 rng(seed);
    Builder b(16);
    for (graph::VertexId v = 1; v < 16; ++v) {
      const auto parent = static_cast<graph::VertexId>(rng() % v);
      b.add_edge(parent, v, 1.0 + static_cast<double>(rng() % 9));
    }
    expect_matches_dijkstra(std::move(b).build(),
                            {.mode = ExecutionMode::Sequential});
  }
}

TEST(EarApsp, SingleBiconnectedBlockGraphs) {
  // The no-articulation extreme: the whole graph is one block and the
  // block-cut tree is a single node, so routing never leaves phase I.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = gen::random_biconnected(10, 18, seed);
    expect_matches_dijkstra(g, {.mode = ExecutionMode::Sequential});
  }
}

TEST(EarApsp, SelfLoopPseudoBlockDoesNotBreakRouting) {
  // Regression (found by eardec_fuzz, family=parallel_multi): a self-loop
  // forms a single-vertex pseudo-block whose vertex need not be an
  // articulation point. block_of used to point at the pseudo-block, and
  // cross-block routing then asked TreeLca about two tree nodes with no
  // connecting cut node.
  Builder b(3);
  b.add_edge(0, 0, 5.0);  // loop at the lowest id used to steal block_of
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  b.add_edge(1, 1, 7.0);  // loop at a true articulation point: still fine
  expect_matches_dijkstra(std::move(b).build(),
                          {.mode = ExecutionMode::Sequential});
}

TEST(EarApsp, ArticulationPointWithLocalDegreeTwoIsKept) {
  // Vertex 2 has degree 2 inside each triangle but global degree 4: it must
  // be pinned in both components' reduced graphs or cross-block routing
  // breaks. Chains around it still contract.
  Builder b(8);
  // Triangle-ish block A with a chain: 0 - 5 - 1 - 2, 2 - 0.
  b.add_edge(0, 5, 1.0);
  b.add_edge(5, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 0, 5.0);
  // Block B: 2 - 6 - 3 - 4, 4 - 2.
  b.add_edge(2, 6, 1.0);
  b.add_edge(6, 3, 1.0);
  b.add_edge(3, 4, 1.0);
  b.add_edge(4, 2, 5.0);
  // Pendant at 7 for good measure.
  b.add_edge(0, 7, 2.0);
  const Graph g = std::move(b).build();
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  // Sanity on the structural claim: 2 is an AP kept in the reduced graphs.
  EXPECT_TRUE(oracle.engine().bcc().is_articulation[2]);
  expect_matches_dijkstra(g, {.mode = ExecutionMode::Sequential});
}

// ---------------------------------------------------- randomized agreement

struct RandomCase {
  std::uint64_t seed;
  const char* family;
};

class EarApspRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EarApspRandomTest, BlockTreeGraphsMatchDijkstra) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::block_tree({.num_blocks = 8,
                             .largest_block = 14,
                             .small_block_min = 3,
                             .small_block_max = 6,
                             .intra_degree = 3.0,
                             .pendants = 6},
                            seed);
  g = gen::subdivide(g, 25, seed + 77);
  expect_matches_dijkstra(g, {.mode = ExecutionMode::Sequential});
}

TEST_P(EarApspRandomTest, PlanarGraphsMatchDijkstra) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_planar(6, 7, 0.5, 0.25, seed);
  expect_matches_dijkstra(g, {.mode = ExecutionMode::Sequential});
}

TEST_P(EarApspRandomTest, ConnectedRandomGraphsMatchDijkstra) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      45, static_cast<graph::EdgeId>(55 + seed % 25), seed * 31 + 5);
  expect_matches_dijkstra(g, {.mode = ExecutionMode::Sequential},
                          /*check_full_tables=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EarApspRandomTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// ------------------------------------------------------- execution modes

class ExecutionModeTest : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(ExecutionModeTest, AllModesAgreeWithDijkstra) {
  Graph g = gen::block_tree({.num_blocks = 6,
                             .largest_block = 16,
                             .small_block_min = 3,
                             .small_block_max = 5,
                             .intra_degree = 3.2,
                             .pendants = 4},
                            99);
  g = gen::subdivide(g, 30, 100);
  const ApspOptions opts{.mode = GetParam(),
                         .cpu_threads = 3,
                         .device = {.workers = 2, .warp_size = 8},
                         .sources_per_unit = 4};
  expect_matches_dijkstra(g, opts);
}

INSTANTIATE_TEST_SUITE_P(Modes, ExecutionModeTest,
                         ::testing::Values(ExecutionMode::Sequential,
                                           ExecutionMode::Multicore,
                                           ExecutionMode::DeviceOnly,
                                           ExecutionMode::Heterogeneous),
                         [](const auto& mode_info) {
                           switch (mode_info.param) {
                             case ExecutionMode::Sequential: return "Sequential";
                             case ExecutionMode::Multicore: return "Multicore";
                             case ExecutionMode::DeviceOnly: return "DeviceOnly";
                             case ExecutionMode::Heterogeneous:
                               return "Heterogeneous";
                           }
                           return "Unknown";
                         });

// ------------------------------------------------------------- ear matrix

TEST(EarApsp, MatrixMatchesPerPairQueries) {
  const Graph g = gen::subdivide(gen::random_biconnected(12, 20, 7), 20, 8);
  const DistanceMatrix m =
      ear_apsp_matrix(g, {.mode = ExecutionMode::Sequential});
  const EarApsp apsp(g, {.mode = ExecutionMode::Sequential});
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u) {
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(m.at(u, v), apsp.distance(u, v));
    }
  }
}

// -------------------------------------------------------------- telemetry

TEST(EarApsp, TimingsAndStatsPopulated) {
  const Graph g = gen::subdivide(gen::random_biconnected(20, 40, 5), 60, 6);
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  const auto& eng = oracle.engine();
  EXPECT_EQ(eng.num_components(), 1u);
  EXPECT_GT(eng.sssp_runs(), 0u);
  EXPECT_EQ(eng.sssp_runs(), eng.reduced(0).graph().num_vertices());
  EXPECT_LT(eng.sssp_runs(), g.num_vertices());  // ears actually helped
  EXPECT_GE(oracle.timings().total(), 0.0);
  EXPECT_GT(eng.scheduler_stats().cpu_units, 0u);
}

TEST(EarApsp, MemoryModelOrdering) {
  // A graph with many blocks and chains must need far less than n^2.
  Graph g = gen::block_tree({.num_blocks = 20,
                             .largest_block = 30,
                             .small_block_min = 3,
                             .small_block_max = 6,
                             .intra_degree = 3.0,
                             .pendants = 10},
                            3);
  g = gen::subdivide(g, 150, 4);
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  const MemoryUsage& mu = oracle.memory();
  EXPECT_LT(mu.ours_bytes(), mu.full_table_bytes);
  EXPECT_LT(mu.compact_tables_bytes, mu.block_tables_bytes);
  EXPECT_GT(mu.ours_mb(), 0.0);
  EXPECT_GT(mu.full_mb(), 0.0);
  EXPECT_GT(mu.compact_mb(), 0.0);
}

TEST(EarApsp, QueriesValidateArguments) {
  const Graph g = gen::cycle(4);
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  EXPECT_THROW((void)oracle.distance(0, 4), std::out_of_range);
  const EarApsp full(g, {.mode = ExecutionMode::Sequential});
  EXPECT_THROW((void)full.distance(4, 0), std::out_of_range);
}

// -------------------------------------------------- dataset-scale smoke

TEST(EarApsp, DatasetSmallGraphsExact) {
  // Full-APSP agreement on the small MCB-scale variants of three datasets
  // with very different structure.
  for (const char* name : {"as-22july06", "c-50", "Planar_2"}) {
    SCOPED_TRACE(name);
    const Graph g = graph::datasets::by_name(name).make_small();
    const DistanceOracle oracle(
        g, {.mode = ExecutionMode::Multicore, .cpu_threads = 2});
    // Spot-check sources (full check would be slow at this size).
    for (graph::VertexId s = 0; s < g.num_vertices();
         s += std::max<graph::VertexId>(1, g.num_vertices() / 17)) {
      const auto ref = sssp::dijkstra(g, s);
      for (graph::VertexId t = 0; t < g.num_vertices(); ++t) {
        if (ref.dist[t] == graph::kInfWeight) {
          ASSERT_EQ(oracle.distance(s, t), graph::kInfWeight);
        } else {
          ASSERT_NEAR(oracle.distance(s, t), ref.dist[t], 1e-6)
              << s << "->" << t;
        }
      }
    }
  }
}

}  // namespace
}  // namespace eardec::core
namespace eardec::core {
namespace {

namespace genr = graph::generators;

class RowQueryTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RowQueryTest, DistancesFromMatchesDijkstraRow) {
  const std::uint64_t seed = GetParam();
  graph::Graph g = genr::block_tree({.num_blocks = 7,
                                     .largest_block = 14,
                                     .small_block_min = 3,
                                     .small_block_max = 6,
                                     .intra_degree = 3.0,
                                     .pendants = 5},
                                    seed + 400);
  g = genr::subdivide(g, 25, seed + 401);
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  for (graph::VertexId u = 0; u < g.num_vertices(); u += 6) {
    const auto row = oracle.engine().distances_from(u);
    const auto ref = sssp::dijkstra(g, u);
    ASSERT_EQ(row.size(), g.num_vertices());
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (ref.dist[v] == graph::kInfWeight) {
        ASSERT_EQ(row[v], graph::kInfWeight) << u << "->" << v;
      } else {
        ASSERT_NEAR(row[v], ref.dist[v], 1e-6) << u << "->" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowQueryTest,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(RowQuery, IsolatedAndDisconnected) {
  graph::Builder b(5);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 2, 3.0);
  const graph::Graph g = std::move(b).build();  // 3, 4 isolated
  const DistanceOracle oracle(g, {.mode = ExecutionMode::Sequential});
  const auto row = oracle.engine().distances_from(3);
  EXPECT_DOUBLE_EQ(row[3], 0.0);
  EXPECT_EQ(row[0], graph::kInfWeight);
  const auto row0 = oracle.engine().distances_from(0);
  EXPECT_DOUBLE_EQ(row0[2], 5.0);
  EXPECT_EQ(row0[4], graph::kInfWeight);
  EXPECT_THROW((void)oracle.engine().distances_from(5), std::out_of_range);
}

}  // namespace
}  // namespace eardec::core
