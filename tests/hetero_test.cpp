// Tests for the heterogeneous runtime: thread pool, double-ended work
// queue, software device, and scheduler. The key invariant throughout:
// every unit of work executes exactly once, under any interleaving.
#include <atomic>
#include <chrono>
#include <thread>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "hetero/device.hpp"
#include "hetero/scheduler.hpp"
#include "hetero/thread_pool.hpp"
#include "hetero/work_queue.hpp"

namespace eardec::hetero {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForWithChunking) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(
      10, 200, [&sum](std::size_t i) { sum.fetch_add(i); }, 16);
  EXPECT_EQ(sum.load(), (10ull + 199) * 190 / 2);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ReusableAcrossManyParallelFors) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 100, [&count](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, SlotsCoverRangeWithBoundedSlotIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  std::atomic<bool> slot_ok{true};
  pool.parallel_for_slots(0, hits.size(),
                          [&](std::size_t i, unsigned slot) {
                            if (slot >= pool.max_slots()) slot_ok = false;
                            hits[i].fetch_add(1);
                          });
  EXPECT_TRUE(slot_ok.load());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SlotsAreDistinctPerConcurrentStream) {
  // Two streams in the same claimed slot at once would make per-slot
  // scratch unsafe — the exact contract the Recompute serve engine and the
  // batched SSSP paths rely on. Track concurrent occupancy per slot.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> occupancy(pool.max_slots());
  std::atomic<bool> exclusive{true};
  pool.parallel_for_slots(0, 300, [&](std::size_t, unsigned slot) {
    if (occupancy[slot].fetch_add(1) != 0) exclusive = false;
    std::this_thread::yield();
    occupancy[slot].fetch_sub(1);
  });
  EXPECT_TRUE(exclusive.load());
}

TEST(ThreadPool, SlotsEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for_slots(7, 7,
                          [&touched](std::size_t, unsigned) { touched = true; });
  pool.parallel_for_slots(9, 3,  // inverted range: begin > end
                          [&touched](std::size_t, unsigned) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SlotsSingleItemRunsOnCallerSlot) {
  // One item never needs a helper wakeup; the calling thread must claim it
  // under a valid slot.
  ThreadPool pool(3);
  std::atomic<int> runs{0};
  unsigned seen_slot = ~0u;
  pool.parallel_for_slots(41, 42, [&](std::size_t i, unsigned slot) {
    EXPECT_EQ(i, 41u);
    seen_slot = slot;
    runs.fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 1);
  EXPECT_LT(seen_slot, pool.max_slots());
}

TEST(ThreadPool, SlotsMoreSlotsThanItems) {
  // Pool larger than the range: most helpers find nothing to claim, every
  // index still runs exactly once.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for_slots(0, hits.size(), [&](std::size_t i, unsigned slot) {
    EXPECT_LT(slot, pool.max_slots());
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SlotsChunkLargerThanRange) {
  // chunk > items degenerates to one chunk on one stream; chunk == 0 is
  // clamped to 1 rather than dividing by zero.
  ThreadPool pool(2);
  for (const std::size_t chunk : {std::size_t{64}, std::size_t{0}}) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for_slots(
        1, 11, [&sum](std::size_t i, unsigned) { sum.fetch_add(i); }, chunk);
    EXPECT_EQ(sum.load(), 55u) << "chunk=" << chunk;
  }
}

TEST(ThreadPool, SlotsZeroHelperPoolStillCompletes) {
  // ThreadPool(0) resolves to hardware_concurrency (min 1) workers — the
  // single-core CI box gets exactly one helper. Either way the call blocks
  // until the whole range ran, with in-bounds slots.
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for_slots(0, hits.size(), [&](std::size_t i, unsigned slot) {
    EXPECT_LT(slot, pool.max_slots());
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkQueue, OrdersHeaviestFirst) {
  WorkQueue q({{0, 5}, {1, 50}, {2, 20}, {3, 1}});
  const auto heavy = q.take_heavy(2);
  ASSERT_EQ(heavy.size(), 2u);
  EXPECT_EQ(heavy[0].id, 1u);
  EXPECT_EQ(heavy[1].id, 2u);
  // The light batch is the two lightest units (spans keep the internal
  // heaviest-first order, so the batch's lightest unit comes last).
  const auto light = q.take_light(2);
  ASSERT_EQ(light.size(), 2u);
  EXPECT_EQ(light[0].id, 0u);
  EXPECT_EQ(light[1].id, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(WorkQueue, SingleThreadedDrainIsContentionFree) {
  WorkQueue q({{0, 5}, {1, 50}, {2, 20}, {3, 1}});
  while (!q.empty()) {
    (void)q.take_heavy(1);
    (void)q.take_light(1);
  }
  EXPECT_EQ(q.contention_events(), 0u);
}

TEST(WorkQueue, TwoEndsNeverOverlap) {
  WorkQueue q([] {
    std::vector<WorkUnit> units;
    for (std::uint32_t i = 0; i < 101; ++i) units.push_back({i, i});
    return units;
  }());
  std::set<std::uint32_t> seen;
  while (!q.empty()) {
    for (const auto& u : q.take_heavy(3)) {
      EXPECT_TRUE(seen.insert(u.id).second);
    }
    for (const auto& u : q.take_light(2)) {
      EXPECT_TRUE(seen.insert(u.id).second);
    }
  }
  EXPECT_EQ(seen.size(), 101u);
  EXPECT_EQ(q.remaining(), 0u);
}

TEST(WorkQueue, ConcurrentDrainIsExactlyOnce) {
  for (int round = 0; round < 5; ++round) {
    constexpr std::uint32_t kUnits = 2000;
    WorkQueue q([] {
      std::vector<WorkUnit> units;
      for (std::uint32_t i = 0; i < kUnits; ++i) units.push_back({i, i % 37});
      return units;
    }());
    std::vector<std::atomic<int>> hits(kUnits);
    {
      std::vector<std::jthread> threads;
      for (int t = 0; t < 4; ++t) {
        const bool heavy = t % 2 == 0;
        threads.emplace_back([&q, &hits, heavy] {
          while (true) {
            const auto batch = heavy ? q.take_heavy(3) : q.take_light(2);
            if (batch.empty()) return;
            for (const auto& u : batch) hits[u.id].fetch_add(1);
          }
        });
      }
    }
    for (std::uint32_t i = 0; i < kUnits; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "unit " << i;
    }
  }
}

TEST(WorkQueue, EmptyQueueYieldsNothing) {
  WorkQueue q({});
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.take_heavy(4).empty());
  EXPECT_TRUE(q.take_light(4).empty());
}

TEST(Device, LaunchCoversGridExactlyOnce) {
  Device dev({.workers = 2, .warp_size = 8});
  std::vector<std::atomic<int>> lanes(500);
  dev.launch(lanes.size(), [&lanes](std::size_t i) { lanes[i].fetch_add(1); });
  for (const auto& l : lanes) EXPECT_EQ(l.load(), 1);
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(Device, LaunchIsBulkSynchronous) {
  Device dev({.workers = 3, .warp_size = 4});
  std::atomic<int> done{0};
  dev.launch(200, [&done](std::size_t) { done.fetch_add(1); });
  // launch() returned, so every lane must have completed.
  EXPECT_EQ(done.load(), 200);
}

TEST(Device, ZeroGridLaunch) {
  Device dev;
  dev.launch(0, [](std::size_t) { FAIL() << "lane executed on empty grid"; });
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(Device, SequentialKernelsCompose) {
  Device dev({.workers = 2});
  std::vector<std::atomic<int>> cells(64);
  for (int step = 0; step < 10; ++step) {
    dev.launch(cells.size(), [&cells](std::size_t i) { cells[i].fetch_add(1); });
  }
  for (const auto& c : cells) EXPECT_EQ(c.load(), 10);
  EXPECT_EQ(dev.kernels_launched(), 10u);
}

TEST(Scheduler, HeterogeneousDrainExactlyOnce) {
  constexpr std::uint32_t kUnits = 500;
  WorkQueue q([] {
    std::vector<WorkUnit> units;
    for (std::uint32_t i = 0; i < kUnits; ++i) units.push_back({i, i});
    return units;
  }());
  std::vector<std::atomic<int>> hits(kUnits);
  // A small per-unit delay forces genuine interleaving even on one core, so
  // the "both sides contribute" assertion below is deterministic in practice.
  const auto work = [&hits](const WorkUnit& u, unsigned) {
    hits[u.id].fetch_add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  };
  const auto stats = run_heterogeneous(
      q, {.cpu_threads = 3, .cpu_batch = 1, .device_batch = 8}, work, work);
  for (std::uint32_t i = 0; i < kUnits; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "unit " << i;
  }
  EXPECT_EQ(stats.cpu_units + stats.device_units, kUnits);
  // With hundreds of units and both sides pulling, each side gets some work.
  EXPECT_GT(stats.cpu_units, 0u);
  EXPECT_GT(stats.device_units, 0u);
  // Per-worker counters are consistent with the aggregates.
  ASSERT_EQ(stats.cpu_workers.size(), 3u);
  std::uint64_t worker_units = 0;
  for (const auto& w : stats.cpu_workers) worker_units += w.units;
  EXPECT_EQ(worker_units, stats.cpu_units);
  EXPECT_EQ(stats.device_worker.units, stats.device_units);
  EXPECT_GT(stats.cpu_claims, 0u);
  EXPECT_GT(stats.device_claims, 0u);
  EXPECT_GT(stats.elapsed_seconds, 0.0);
  EXPECT_GT(stats.utilization(), 0.0);
  EXPECT_LE(stats.utilization(), 1.0);
}

TEST(Scheduler, CpuOnlyDrain) {
  WorkQueue q({{0, 1}, {1, 2}, {2, 3}});
  std::atomic<int> count{0};
  const auto stats = run_cpu_only(q, 2, [&count](const WorkUnit&, unsigned) {
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 3);
  EXPECT_EQ(stats.cpu_units, 3u);
  EXPECT_EQ(stats.device_units, 0u);
  EXPECT_EQ(stats.device_worker.units, 0u);
}

TEST(Scheduler, CpuOnlyHonorsBatchSize) {
  // With one worker and a minimum batch of 4, a 12-unit drain needs at
  // most 3 claims (guided growth can only make claims larger).
  WorkQueue q([] {
    std::vector<WorkUnit> units;
    for (std::uint32_t i = 0; i < 12; ++i) units.push_back({i, i});
    return units;
  }());
  const auto stats =
      run_cpu_only(q, 1, [](const WorkUnit&, unsigned) {}, 4);
  EXPECT_EQ(stats.cpu_units, 12u);
  EXPECT_LE(stats.cpu_claims, 3u);
}

TEST(Scheduler, WorkerIndicesAreStableAndInRange) {
  WorkQueue q([] {
    std::vector<WorkUnit> units;
    for (std::uint32_t i = 0; i < 300; ++i) units.push_back({i, i});
    return units;
  }());
  constexpr unsigned kThreads = 4;
  std::atomic<bool> bad{false};
  const auto stats = run_cpu_only(
      q, kThreads,
      [&bad](const WorkUnit&, unsigned worker) {
        if (worker >= kThreads) bad.store(true);
        std::this_thread::sleep_for(std::chrono::microseconds(10));
      });
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(stats.cpu_workers.size(), kThreads);
}

TEST(Scheduler, EmptyQueueReturnsImmediately) {
  WorkQueue q({});
  const auto stats = run_heterogeneous(
      q, {}, [](const WorkUnit&, unsigned) {}, [](const WorkUnit&, unsigned) {});
  EXPECT_EQ(stats.cpu_units + stats.device_units, 0u);
  EXPECT_EQ(stats.utilization(), 0.0);
}

TEST(SchedulerStats, AccumulateMergesPerWorkerCounters) {
  SchedulerStats a;
  a.cpu_units = 5;
  a.cpu_claims = 2;
  a.elapsed_seconds = 0.5;
  a.cpu_workers = {{.units = 3, .claims = 1, .busy_seconds = 0.2},
                   {.units = 2, .claims = 1, .busy_seconds = 0.1}};
  SchedulerStats b;
  b.cpu_units = 4;
  b.device_units = 7;
  b.device_claims = 1;
  b.queue_contention = 3;
  b.cpu_workers = {{.units = 4, .claims = 2, .busy_seconds = 0.3}};
  b.device_worker = {.units = 7, .claims = 1, .busy_seconds = 0.4};
  a.accumulate(b);
  EXPECT_EQ(a.cpu_units, 9u);
  EXPECT_EQ(a.device_units, 7u);
  EXPECT_EQ(a.queue_contention, 3u);
  ASSERT_EQ(a.cpu_workers.size(), 2u);
  EXPECT_EQ(a.cpu_workers[0].units, 7u);
  EXPECT_EQ(a.cpu_workers[1].units, 2u);
  EXPECT_EQ(a.device_worker.units, 7u);
  EXPECT_DOUBLE_EQ(a.device_worker.busy_seconds, 0.4);
}

TEST(SchedulerStats, AccumulateElapsedSequentialSumsConcurrentMaxes) {
  // Regression: merging two overlapping drains used to sum their wall
  // clocks, double-counting the shared interval and deflating utilization.
  SchedulerStats seq_a;
  seq_a.elapsed_seconds = 0.5;
  SchedulerStats seq_b;
  seq_b.elapsed_seconds = 0.25;
  seq_a.accumulate(seq_b);  // Sequential is the default: repetitions add
  EXPECT_DOUBLE_EQ(seq_a.elapsed_seconds, 0.75);

  SchedulerStats conc_a;
  conc_a.elapsed_seconds = 0.5;
  conc_a.cpu_workers = {{.units = 1, .claims = 1, .busy_seconds = 0.4}};
  SchedulerStats conc_b;
  conc_b.elapsed_seconds = 0.3;
  conc_b.cpu_workers = {{.units = 1, .claims = 1, .busy_seconds = 0.25}};
  conc_a.accumulate(conc_b, RunOverlap::Concurrent);
  EXPECT_DOUBLE_EQ(conc_a.elapsed_seconds, 0.5);
  // The utilization denominator reflects the real 0.5 s window the drains
  // shared, not the 0.8 s a sum would claim.
  EXPECT_DOUBLE_EQ(conc_a.utilization(), (0.4 + 0.25) / (0.5 * 1.0));
  ASSERT_EQ(conc_a.cpu_workers.size(), 1u);
  EXPECT_DOUBLE_EQ(conc_a.cpu_workers[0].busy_seconds, 0.65);
}

TEST(Scheduler, DeviceSideSeesHeavyUnitsFirst) {
  // With a device batch as large as the queue, the device grabs everything
  // heavy; verify its units are the heaviest ones.
  WorkQueue q({{0, 100}, {1, 90}, {2, 1}, {3, 2}});
  std::set<std::uint32_t> device_ids;
  std::mutex m;
  std::atomic<bool> device_started{false};
  run_heterogeneous(
      q, {.cpu_threads = 1, .cpu_batch = 1, .device_batch = 2},
      [&device_started](const WorkUnit&, unsigned) {
        // The single CPU worker stalls on its first unit, guaranteeing the
        // device gets the first heavy batch even on a one-core host.
        while (!device_started.load()) std::this_thread::yield();
      },
      [&](const WorkUnit& u, unsigned) {
        const std::lock_guard lock(m);
        device_ids.insert(u.id);
        device_started.store(true);
      });
  // The first heavy batch is deterministic: ids 0 and 1.
  EXPECT_TRUE(device_ids.contains(0));
  EXPECT_TRUE(device_ids.contains(1));
}

}  // namespace
}  // namespace eardec::hetero
namespace eardec::hetero {
namespace {

TEST(DeviceBlocks, SharedScratchIsZeroedAndPerBlock) {
  Device dev({.workers = 2});
  std::vector<std::uint64_t> sums(8, 0);
  dev.launch_blocks(sums.size(), 4, [&](Device::Block& blk) {
    auto shared = blk.shared();
    for (const std::uint64_t w : shared) EXPECT_EQ(w, 0u);
    blk.for_each_lane(shared.size(), [&](std::size_t lane) {
      shared[lane] = blk.id() + lane;
    });
    std::uint64_t total = 0;
    blk.for_each_lane(shared.size(),
                      [&](std::size_t lane) { total += shared[lane]; });
    sums[blk.id()] = total;
  });
  for (std::size_t b = 0; b < sums.size(); ++b) {
    EXPECT_EQ(sums[b], 4 * b + 6);  // b + (b+1) + (b+2) + (b+3)
  }
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(DeviceBlocks, TreeReductionPattern) {
  // The MCB witness-update reduction: XOR-combining shared words with
  // doubling strides must fold everything into slot 0 for any word count.
  Device dev({.workers = 2});
  for (const std::size_t words : {1u, 2u, 3u, 5u, 8u, 13u}) {
    std::uint64_t result = 0;
    std::uint64_t expected = 0;
    for (std::size_t w = 0; w < words; ++w) expected ^= 0x9e3779b9ull * (w + 1);
    dev.launch_blocks(1, words, [&](Device::Block& blk) {
      auto shared = blk.shared();
      blk.for_each_lane(words, [&](std::size_t w) {
        shared[w] = 0x9e3779b9ull * (w + 1);
      });
      for (std::size_t stride = 1; stride < words; stride *= 2) {
        blk.for_each_lane(words / (2 * stride) + 1, [&](std::size_t k) {
          const std::size_t lo = 2 * stride * k;
          if (lo + stride < words) shared[lo] ^= shared[lo + stride];
        });
      }
      result = shared[0];
    });
    EXPECT_EQ(result, expected) << "words " << words;
  }
}

TEST(DeviceBlocks, ZeroBlocksIsNoOp) {
  Device dev;
  dev.launch_blocks(0, 4, [](Device::Block&) {
    FAIL() << "block executed on empty grid";
  });
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

}  // namespace
}  // namespace eardec::hetero
