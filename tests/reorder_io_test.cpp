// Tests for vertex reordering and the binary graph format: permutation
// correctness, distance invariance under relabeling, bandwidth reduction,
// and binary round-trips with corruption handling.
#include <algorithm>
#include <numeric>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "graph/binary_io.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "sssp/dijkstra.hpp"

namespace eardec::graph {
namespace {

namespace gen = generators;

/// CSR "bandwidth" proxy: mean |u - v| over the edges.
double mean_edge_span(const Graph& g) {
  if (g.num_edges() == 0) return 0;
  double sum = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    sum += u > v ? u - v : v - u;
  }
  return sum / g.num_edges();
}

class ReorderTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReorderTest, PermutationMapsAreInverse) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      60, static_cast<EdgeId>(130 + seed * 7), seed);
  for (const auto& r : {reorder_bfs(g), reorder_by_degree(g)}) {
    ASSERT_EQ(r.graph.num_vertices(), g.num_vertices());
    ASSERT_EQ(r.graph.num_edges(), g.num_edges());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(r.to_old[r.to_new[v]], v);
      EXPECT_EQ(r.graph.degree(r.to_new[v]), g.degree(v));
    }
  }
}

TEST_P(ReorderTest, DistancesInvariantUnderRelabeling) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::random_connected(
      40, static_cast<EdgeId>(85 + seed * 3), seed + 31);
  const Reordered r = reorder_bfs(g);
  for (VertexId s = 0; s < g.num_vertices(); s += 9) {
    const auto orig = sssp::dijkstra(g, s);
    const auto relab = sssp::dijkstra(r.graph, r.to_new[s]);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(relab.dist[r.to_new[v]], orig.dist[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderTest,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Reorder, BfsReducesSpanOnShuffledGrid) {
  // A grid whose labels were scrambled: BFS reordering must restore most
  // of the locality (grid edges span O(side) after Cuthill–McKee vs O(n)
  // when shuffled).
  const Graph grid = gen::grid(18, 18);
  std::vector<VertexId> shuffle(grid.num_vertices());
  std::iota(shuffle.begin(), shuffle.end(), 0u);
  std::mt19937_64 rng(11);
  std::shuffle(shuffle.begin(), shuffle.end(), rng);
  const Reordered scrambled = reorder_with(grid, std::move(shuffle));
  const Reordered restored = reorder_bfs(scrambled.graph);
  EXPECT_LT(mean_edge_span(restored.graph),
            mean_edge_span(scrambled.graph) / 3.0);
}

TEST(Reorder, DegreeOrderPutsHubsFirst) {
  const Graph g = gen::block_tree({.num_blocks = 6,
                                   .largest_block = 20,
                                   .small_block_min = 3,
                                   .small_block_max = 5,
                                   .intra_degree = 4.0,
                                   .pendants = 10},
                                  5);
  const Reordered r = reorder_by_degree(g);
  for (VertexId v = 0; v + 1 < r.graph.num_vertices(); ++v) {
    EXPECT_GE(r.graph.degree(v), r.graph.degree(v + 1));
  }
}

TEST(Reorder, RejectsBadPermutations) {
  const Graph g = gen::cycle(4);
  EXPECT_THROW((void)reorder_with(g, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW((void)reorder_with(g, {0, 1, 2, 2}), std::invalid_argument);
  EXPECT_THROW((void)reorder_with(g, {0, 1, 2, 9}), std::invalid_argument);
}

// ----------------------------------------------------------------- binary io

TEST(BinaryIo, RoundTripPreservesEverything) {
  const Graph g = gen::subdivide(gen::random_biconnected(30, 60, 3), 40, 4);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(buf, g);
  const Graph h = io::read_binary(buf);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.endpoints(e), g.endpoints(e));
    EXPECT_DOUBLE_EQ(h.weight(e), g.weight(e));
  }
}

TEST(BinaryIo, SelfLoopsAndParallelsSurvive) {
  Builder b(3);
  b.add_edge(0, 0, 2.5);
  b.add_edge(1, 2, 1.0);
  b.add_edge(1, 2, 3.0);
  const Graph g = std::move(b).build();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(buf, g);
  const Graph h = io::read_binary(buf);
  EXPECT_EQ(h.num_self_loops(), 1u);
  EXPECT_TRUE(h.has_parallel_edges());
}

TEST(BinaryIo, RejectsCorruption) {
  std::stringstream bad1(std::string("NOPE"), std::ios::in | std::ios::binary);
  EXPECT_THROW((void)io::read_binary(bad1), std::runtime_error);

  const Graph g = gen::cycle(5);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(buf, g);
  std::string data = buf.str();
  // Truncate mid-weights.
  std::stringstream bad2(data.substr(0, data.size() - 6),
                         std::ios::in | std::ios::binary);
  EXPECT_THROW((void)io::read_binary(bad2), std::runtime_error);
  // Corrupt an endpoint beyond n.
  data[4 + 8 + 8] = '\xff';
  data[4 + 8 + 8 + 1] = '\xff';
  data[4 + 8 + 8 + 2] = '\xff';
  data[4 + 8 + 8 + 3] = '\xff';
  std::stringstream bad3(data, std::ios::in | std::ios::binary);
  EXPECT_THROW((void)io::read_binary(bad3), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip) {
  const Graph g = gen::petersen();
  const auto path = std::filesystem::temp_directory_path() / "eardec_t.edg";
  io::write_binary_file(path, g);
  const Graph h = io::read_binary_file(path);
  EXPECT_EQ(h.num_edges(), 15u);
  std::filesystem::remove(path);
  EXPECT_THROW((void)io::read_binary_file(path), std::runtime_error);
}

}  // namespace
}  // namespace eardec::graph
