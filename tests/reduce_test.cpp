// Tests for degree-two chain discovery, the reduced graph (both modes), and
// pendant peeling — including the central distance-preservation property.
#include <map>
#include <queue>

#include <gtest/gtest.h>

#include "connectivity/ear_decomposition.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "reduce/chains.hpp"
#include "reduce/pendant.hpp"
#include "reduce/reduced_graph.hpp"

namespace eardec::reduce {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::Graph;

/// Reference Dijkstra for oracle checks (the sssp library is tested on its
/// own; keeping an independent implementation here avoids circular trust).
std::vector<Weight> oracle_sssp(const Graph& g, VertexId s) {
  std::vector<Weight> dist(g.num_vertices(), graph::kInfWeight);
  using Item = std::pair<Weight, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[s] = 0;
  pq.emplace(0, s);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (const graph::HalfEdge& he : g.neighbors(v)) {
      if (d + he.weight < dist[he.to]) {
        dist[he.to] = d + he.weight;
        pq.emplace(dist[he.to], he.to);
      }
    }
  }
  return dist;
}

// -------------------------------------------------------------------- chains

TEST(Chains, PathInteriorFormsOneChain) {
  const Graph g = gen::path(6);  // 0-1-2-3-4-5, anchors are endpoints (deg 1)
  const ChainSet cs = find_chains(g);
  ASSERT_EQ(cs.chains.size(), 1u);
  const Chain& c = cs.chains[0];
  EXPECT_EQ(c.interior.size(), 4u);
  EXPECT_EQ(c.edges.size(), 5u);
  const bool forward = c.left == 0;
  EXPECT_EQ(forward ? c.left : c.right, 0u);
  EXPECT_EQ(forward ? c.right : c.left, 5u);
  EXPECT_DOUBLE_EQ(c.total, g.total_weight());
  // Prefix distances are strictly increasing along the chain.
  for (std::size_t i = 1; i < c.prefix.size(); ++i) {
    EXPECT_GT(c.prefix[i], c.prefix[i - 1]);
  }
}

TEST(Chains, LeftRightAndDistancesMatchDefinition) {
  // 0 --1-- x --2-- y --3-- 1 with extra anchor edges making 0,1 degree 3.
  Builder b(6);
  b.add_edge(0, 2, 1.0);  // x = 2
  b.add_edge(2, 3, 2.0);  // y = 3
  b.add_edge(3, 1, 3.0);
  b.add_edge(0, 4, 1.0);
  b.add_edge(0, 5, 1.0);
  b.add_edge(1, 4, 1.0);
  b.add_edge(1, 5, 1.0);
  const Graph g = std::move(b).build();
  const ChainSet cs = find_chains(g);
  ASSERT_NE(cs.chain_of[2], kNoChain);
  ASSERT_EQ(cs.chain_of[2], cs.chain_of[3]);
  const VertexId lx = cs.left(2), rx = cs.right(2);
  ASSERT_TRUE((lx == 0 && rx == 1) || (lx == 1 && rx == 0));
  if (lx == 0) {
    EXPECT_DOUBLE_EQ(cs.dist_left(2), 1.0);
    EXPECT_DOUBLE_EQ(cs.dist_right(2), 5.0);
    EXPECT_DOUBLE_EQ(cs.dist_left(3), 3.0);
    EXPECT_DOUBLE_EQ(cs.dist_right(3), 3.0);
  } else {
    EXPECT_DOUBLE_EQ(cs.dist_right(2), 1.0);
    EXPECT_DOUBLE_EQ(cs.dist_left(2), 5.0);
  }
}

TEST(Chains, AnchorAnchorEdgesAreNotChains) {
  const Graph g = gen::complete(4);  // no degree-2 vertices
  const ChainSet cs = find_chains(g);
  EXPECT_TRUE(cs.chains.empty());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(cs.edge_chain[e], kNoChain);
  }
}

TEST(Chains, PureCycleDesignatesAnchor) {
  const Graph g = gen::cycle(5);
  const ChainSet cs = find_chains(g);
  ASSERT_EQ(cs.chains.size(), 1u);
  const Chain& c = cs.chains[0];
  EXPECT_TRUE(c.is_cycle());
  EXPECT_EQ(c.interior.size(), 4u);  // all but the anchor
  EXPECT_EQ(c.edges.size(), 5u);
  EXPECT_DOUBLE_EQ(c.total, g.total_weight());
}

TEST(Chains, RingPrefixBookkeepingSumsToTotal) {
  // A pure ring is the single-maximal-chain extreme: one cycle chain whose
  // designated anchor is both endpoints. The two directed prefix distances
  // of every interior vertex must partition the chain total, and the
  // smaller one must be the true shortest distance from the anchor.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = gen::cycle(8, {.lo = 1, .hi = 20}, seed);
    const ChainSet cs = find_chains(g);
    ASSERT_EQ(cs.chains.size(), 1u);
    const Chain& c = cs.chains[0];
    ASSERT_TRUE(c.is_cycle());
    EXPECT_EQ(c.left, c.right);
    const auto ref = oracle_sssp(g, c.left);
    for (const VertexId x : c.interior) {
      EXPECT_EQ(cs.left(x), c.left);
      EXPECT_EQ(cs.right(x), c.left);
      EXPECT_DOUBLE_EQ(cs.dist_left(x) + cs.dist_right(x), c.total);
      EXPECT_DOUBLE_EQ(std::min(cs.dist_left(x), cs.dist_right(x)), ref[x]);
    }
    // Prefixes are strictly increasing along the traversal direction.
    for (std::size_t i = 1; i < c.prefix.size(); ++i) {
      EXPECT_GT(c.prefix[i], c.prefix[i - 1]);
    }
  }
}

TEST(Chains, LollipopAnchorHasLeftEqualRight) {
  // Two cycles welded at vertex 0 (degree 4): both chains close back onto
  // the same anchor, so left(x) == right(x) at a vertex of degree > 2 —
  // the case the chain formulas must not conflate with a bridge endpoint.
  Builder b(6);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  b.add_edge(2, 3, 3.0);
  b.add_edge(3, 0, 4.0);
  b.add_edge(0, 4, 1.0);
  b.add_edge(4, 5, 1.0);
  b.add_edge(5, 0, 1.0);
  const Graph g = std::move(b).build();
  const ChainSet cs = find_chains(g);
  ASSERT_EQ(cs.chains.size(), 2u);
  EXPECT_EQ(cs.chain_of[0], kNoChain);  // the shared anchor stays
  for (const Chain& c : cs.chains) {
    EXPECT_TRUE(c.is_cycle());
    EXPECT_EQ(c.left, 0u);
    EXPECT_EQ(c.right, 0u);
  }
  // Vertex 2 sits 3 from the anchor one way (1+2) and 7 the other (3+4).
  ASSERT_NE(cs.chain_of[2], kNoChain);
  EXPECT_EQ(cs.left(2), 0u);
  EXPECT_EQ(cs.right(2), 0u);
  const Weight lo = std::min(cs.dist_left(2), cs.dist_right(2));
  const Weight hi = std::max(cs.dist_left(2), cs.dist_right(2));
  EXPECT_DOUBLE_EQ(lo, 3.0);
  EXPECT_DOUBLE_EQ(hi, 7.0);
  // The same bookkeeping drives real distances end to end.
  const auto ref = oracle_sssp(g, 2);
  EXPECT_DOUBLE_EQ(lo, ref[0]);
}

TEST(Chains, SelfLoopVertexIsAnchor) {
  Builder b(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(1, 1, 1.0);  // loop makes 1 an anchor despite two plain edges
  b.add_edge(2, 0, 1.0);
  const Graph g = std::move(b).build();
  const ChainSet cs = find_chains(g);
  EXPECT_EQ(cs.chain_of[1], kNoChain);
}

TEST(Chains, EveryChainLiesWithinOneEar) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph core = gen::random_biconnected(12, 20, seed);
    const Graph g = gen::subdivide(core, 30, seed + 9);
    const auto ed = connectivity::ear_decomposition(g);
    const ChainSet cs = find_chains(g);
    for (const Chain& c : cs.chains) {
      const std::uint32_t ear = ed.edge_ear[c.edges.front()];
      for (const graph::EdgeId e : c.edges) {
        EXPECT_EQ(ed.edge_ear[e], ear);
      }
    }
  }
}

TEST(Chains, EdgePartitionConsistent) {
  const Graph g = gen::subdivide(gen::random_biconnected(15, 30, 2), 40, 3);
  const ChainSet cs = find_chains(g);
  // Each edge is either in exactly one chain's edge list or in none.
  std::vector<std::uint32_t> count(g.num_edges(), 0);
  for (const Chain& c : cs.chains) {
    for (const graph::EdgeId e : c.edges) ++count[e];
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(count[e], cs.edge_chain[e] == kNoChain ? 0u : 1u);
  }
  // chain_of/position agree with interior lists.
  for (std::uint32_t ci = 0; ci < cs.chains.size(); ++ci) {
    const Chain& c = cs.chains[ci];
    for (std::size_t i = 0; i < c.interior.size(); ++i) {
      EXPECT_EQ(cs.chain_of[c.interior[i]], ci);
      EXPECT_EQ(cs.position[c.interior[i]], i);
    }
  }
}

// -------------------------------------------------------------- ReducedGraph

TEST(ReducedGraph, RemovesExactlyDegreeTwoInterior) {
  const Graph core = gen::random_biconnected(20, 40, 5);
  const Graph g = gen::subdivide(core, 50, 6);
  const ReducedGraph r(g, ReduceMode::ForApsp);
  EXPECT_GE(r.num_removed(), 50u);  // at least the subdivision vertices
  // Every removed vertex has degree two; every kept one participates.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!r.kept(v)) {
      EXPECT_EQ(g.degree(v), 2u);
      EXPECT_EQ(r.to_reduced(v), graph::kNullVertex);
    } else {
      EXPECT_EQ(r.to_original(r.to_reduced(v)), v);
    }
  }
}

// Distance preservation: the defining property of the reduction
// (paper: "S[u,v] = S^r[u,v] for u,v of degree >= 3").
class ReducedGraphDistanceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReducedGraphDistanceTest, PreservesDistancesBetweenKeptVertices) {
  const std::uint64_t seed = GetParam();
  const Graph core = gen::random_biconnected(
      12, static_cast<graph::EdgeId>(18 + seed % 10), seed);
  const Graph g = gen::subdivide(core, 35, seed * 13 + 1);
  const ReducedGraph r(g, ReduceMode::ForApsp);
  const Graph& gr = r.graph();
  for (VertexId rs = 0; rs < gr.num_vertices(); ++rs) {
    const auto dr = oracle_sssp(gr, rs);
    const auto dg = oracle_sssp(g, r.to_original(rs));
    for (VertexId rt = 0; rt < gr.num_vertices(); ++rt) {
      EXPECT_NEAR(dr[rt], dg[r.to_original(rt)], 1e-9)
          << "pair " << rs << "," << rt;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReducedGraphDistanceTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(ReducedGraph, ForMcbPreservesCycleSpaceDimension) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph core = gen::random_biconnected(
        10, static_cast<graph::EdgeId>(14 + seed), seed);
    const Graph g = gen::subdivide(core, 25, seed + 40);
    const ReducedGraph r(g, ReduceMode::ForMcb);
    const auto& gr = r.graph();
    // dim(cycle space) = m - n + k is invariant under the contraction.
    EXPECT_EQ(static_cast<std::int64_t>(gr.num_edges()) - gr.num_vertices(),
              static_cast<std::int64_t>(g.num_edges()) - g.num_vertices());
  }
}

TEST(ReducedGraph, ForMcbKeepsParallelEdgesAndSelfLoops) {
  // Theta graph made of three 2-chains between vertices 0 and 1: reduced
  // MCB graph must be a 3-fold parallel multigraph on two vertices.
  Builder b(5);
  b.add_edge(0, 2, 1.0);
  b.add_edge(2, 1, 1.0);
  b.add_edge(0, 3, 2.0);
  b.add_edge(3, 1, 2.0);
  b.add_edge(0, 4, 3.0);
  b.add_edge(4, 1, 3.0);
  const Graph g = std::move(b).build();
  const ReducedGraph rm(g, ReduceMode::ForMcb);
  EXPECT_EQ(rm.graph().num_vertices(), 2u);
  EXPECT_EQ(rm.graph().num_edges(), 3u);
  EXPECT_TRUE(rm.graph().has_parallel_edges());
  const ReducedGraph ra(g, ReduceMode::ForApsp);
  EXPECT_EQ(ra.graph().num_edges(), 1u);
  EXPECT_DOUBLE_EQ(ra.graph().weight(0), 2.0);  // lightest bundle member
}

TEST(ReducedGraph, PureCycleBecomesSelfLoopForMcb) {
  const Graph g = gen::cycle(6);
  const ReducedGraph rm(g, ReduceMode::ForMcb);
  EXPECT_EQ(rm.graph().num_vertices(), 1u);
  EXPECT_EQ(rm.graph().num_edges(), 1u);
  EXPECT_TRUE(rm.graph().is_self_loop(0));
  EXPECT_DOUBLE_EQ(rm.graph().weight(0), g.total_weight());
  const ReducedGraph ra(g, ReduceMode::ForApsp);
  EXPECT_EQ(ra.graph().num_vertices(), 1u);
  EXPECT_EQ(ra.graph().num_edges(), 0u);
}

TEST(ReducedGraph, ExpandEdgeRoundTrip) {
  const Graph core = gen::random_biconnected(8, 14, 3);
  const Graph g = gen::subdivide(core, 20, 4);
  const ReducedGraph r(g, ReduceMode::ForMcb);
  const auto& gr = r.graph();
  for (graph::EdgeId re = 0; re < gr.num_edges(); ++re) {
    const auto expanded = r.expand_edge(re);
    Weight sum = 0;
    for (const graph::EdgeId e : expanded) sum += g.weight(e);
    EXPECT_NEAR(sum, gr.weight(re), 1e-9);
    if (r.edge_chain(re) == kNoChain) {
      ASSERT_EQ(expanded.size(), 1u);
      const auto [u, v] = g.endpoints(expanded[0]);
      const auto [ru, rv] = gr.endpoints(re);
      const std::set<VertexId> orig{u, v};
      const std::set<VertexId> mapped{r.to_original(ru), r.to_original(rv)};
      EXPECT_EQ(orig, mapped);
    }
  }
}

TEST(ReducedGraph, NoOpOnChainFreeGraph) {
  const Graph g = gen::complete(5);
  const ReducedGraph r(g, ReduceMode::ForApsp);
  EXPECT_EQ(r.graph().num_vertices(), 5u);
  EXPECT_EQ(r.graph().num_edges(), 10u);
  EXPECT_EQ(r.num_removed(), 0u);
}

// --------------------------------------------------------------- PendantPeel

TEST(PendantPeel, StarCollapsesToHub) {
  Builder b(5);
  for (VertexId v = 1; v < 5; ++v) b.add_edge(0, v, static_cast<Weight>(v));
  const Graph g = std::move(b).build();
  const PendantPeel p(g);
  EXPECT_EQ(p.core().num_vertices(), 1u);
  EXPECT_EQ(p.num_removed(), 4u);
  for (VertexId v = 1; v < 5; ++v) {
    EXPECT_EQ(p.attach(v), 0u);
    EXPECT_DOUBLE_EQ(p.attach_distance(v), static_cast<Weight>(v));
  }
}

TEST(PendantPeel, CycleWithTailPeelsOnlyTail) {
  Builder b(6);  // triangle 0-1-2 with tail 2-3-4-5
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 0, 1.0);
  b.add_edge(2, 3, 2.0);
  b.add_edge(3, 4, 3.0);
  b.add_edge(4, 5, 4.0);
  const Graph g = std::move(b).build();
  const PendantPeel p(g);
  EXPECT_EQ(p.core().num_vertices(), 3u);
  EXPECT_EQ(p.attach(5), 2u);
  EXPECT_DOUBLE_EQ(p.attach_distance(5), 9.0);
  EXPECT_DOUBLE_EQ(p.tree_distance(3, 5), 7.0);
  EXPECT_DOUBLE_EQ(p.tree_distance(5, 3), 7.0);
}

TEST(PendantPeel, CoreHasNoDegreeOneVertices) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = gen::block_tree({.num_blocks = 8,
                                     .largest_block = 14,
                                     .small_block_min = 3,
                                     .small_block_max = 5,
                                     .intra_degree = 2.6,
                                     .pendants = 12},
                                    seed);
    const PendantPeel p(g);
    for (VertexId v = 0; v < p.core().num_vertices(); ++v) {
      EXPECT_NE(p.core().degree(v), 1u);
    }
  }
}

TEST(PendantPeel, TreeDistanceMatchesOracle) {
  const Graph g = gen::block_tree({.num_blocks = 4,
                                   .largest_block = 8,
                                   .small_block_min = 3,
                                   .small_block_max = 4,
                                   .intra_degree = 2.5,
                                   .pendants = 20},
                                  11);
  const PendantPeel p(g);
  for (VertexId x = 0; x < g.num_vertices(); ++x) {
    if (p.kept(x)) continue;
    const auto d = oracle_sssp(g, x);
    EXPECT_NEAR(p.attach_distance(x), d[p.attach(x)], 1e-9);
    for (VertexId y = 0; y < g.num_vertices(); ++y) {
      if (p.kept(y)) continue;
      const Weight td = p.tree_distance(x, y);
      if (td != graph::kInfWeight) {
        EXPECT_NEAR(td, d[y], 1e-9) << x << "," << y;
      }
    }
  }
}

TEST(PendantPeel, WholeTreeKeepsOneRoot) {
  const Graph g = gen::path(7);
  const PendantPeel p(g);
  EXPECT_EQ(p.core().num_vertices(), 1u);
  EXPECT_EQ(p.core().num_edges(), 0u);
  // All removed vertices attach to the surviving root with the right dist.
  const VertexId root = p.to_original(0);
  const auto d = oracle_sssp(g, root);
  for (VertexId v = 0; v < 7; ++v) {
    if (v == root) continue;
    EXPECT_EQ(p.attach(v), root);
    EXPECT_NEAR(p.attach_distance(v), d[v], 1e-9);
  }
}

}  // namespace
}  // namespace eardec::reduce
